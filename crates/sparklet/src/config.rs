//! Cluster, fault-injection and cost-model configuration.

use serde::{Deserialize, Serialize};

/// Topology and behaviour of a [`crate::Cluster`].
///
/// The paper runs Spark 1.2.1 on 14 nodes with YARN executors of 32 GB and
/// 1–4 cores; we model the same knobs. The engine launches
/// `num_executors * cores_per_executor` real worker threads (capped at
/// [`ClusterConfig::MAX_WORKER_THREADS`]), but the authoritative notion of
/// time for experiments is the virtual clock parameterised by
/// [`CostModelConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of virtual executors (paper: `--num-executors`).
    pub num_executors: usize,
    /// Task slots per executor (paper: `--executor-cores`).
    pub cores_per_executor: usize,
    /// Modelled memory budget per executor in bytes (paper:
    /// `--executor-memory`, 32 GB in most experiments). Tasks that charge
    /// more resident memory than this are killed and retried, reproducing
    /// the swap-and-timeout regime of the paper's Fig. 8b.
    pub memory_per_executor: usize,
    /// Maximum attempts per task (Spark's `spark.task.maxFailures`, 4).
    pub max_task_attempts: u32,
    /// Speculative execution (Spark's `spark.speculation`, default off):
    /// after a stage's regular attempts finish, tasks slower than twice the
    /// stage median get one clean clone on another executor; the faster
    /// finisher wins and the loser's result is discarded deterministically.
    pub speculation: bool,
    /// Fault injection settings.
    pub fault: FaultConfig,
    /// Virtual-time cost model.
    pub cost: CostModelConfig,
    /// Morsel-driven scheduling knobs (see [`SchedConfig`]).
    pub sched: SchedConfig,
    /// Chunked operator-at-a-time execution knobs (see [`BatchConfig`]).
    pub batch: BatchConfig,
    /// Out-of-core execution knobs (see [`SpillConfig`]).
    pub spill: SpillConfig,
}

impl ClusterConfig {
    /// Upper bound on real OS threads regardless of the virtual topology.
    pub const MAX_WORKER_THREADS: usize = 64;

    /// A small local topology suitable for tests.
    pub fn local(parallelism: usize) -> Self {
        ClusterConfig {
            num_executors: parallelism.max(1),
            cores_per_executor: 1,
            memory_per_executor: 512 << 20,
            max_task_attempts: 4,
            speculation: false,
            fault: FaultConfig::disabled(),
            cost: CostModelConfig::default(),
            sched: SchedConfig::default(),
            batch: BatchConfig::default(),
            spill: SpillConfig::default(),
        }
    }

    /// Total task slots in the virtual topology.
    pub fn total_slots(&self) -> usize {
        (self.num_executors * self.cores_per_executor).max(1)
    }

    /// Number of real worker threads to launch.
    pub fn worker_threads(&self) -> usize {
        self.total_slots().min(Self::MAX_WORKER_THREADS)
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::local(4)
    }
}

/// Morsel-driven scheduling configuration.
///
/// [`crate::Cluster::run_morsel_job`] cuts each input partition into
/// *morsels* — contiguous runs whose summed op weight stays at or under
/// `morsel_ops` — and schedules morsels instead of whole partitions. Each
/// worker owns the queue of morsels whose home partition maps to it; when
/// `steal` is on, a worker that drains its queue takes the *tail* morsel of
/// the queue with the most remaining work. Results are reassembled in
/// (partition, morsel-index) order, so output is bit-identical regardless of
/// how morsels interleave across workers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Op-weight budget per morsel. A partition whose total weight fits the
    /// budget stays a single morsel; `u64::MAX` disables splitting entirely
    /// (whole-partition tasks, as `run_job` schedules).
    pub morsel_ops: u64,
    /// Work stealing between worker queues. With `false`, every morsel runs
    /// on its home worker (`partition % workers`) — static placement, the
    /// pre-morsel behaviour and the baseline the scheduler bench compares
    /// against.
    pub steal: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            morsel_ops: Self::DEFAULT_MORSEL_OPS,
            steal: true,
        }
    }
}

impl SchedConfig {
    /// Default morsel budget: with the default 400 ns/op cost this is ~6.5 ms
    /// of virtual compute per morsel — small enough to balance skewed
    /// partitions, large enough that the per-morsel dispatch overhead stays
    /// in the noise.
    pub const DEFAULT_MORSEL_OPS: u64 = 16_384;

    /// Morsel splitting disabled, stealing off: whole partitions placed
    /// statically, exactly like [`crate::Cluster::run_job`].
    pub fn static_placement() -> Self {
        SchedConfig {
            morsel_ops: u64::MAX,
            steal: false,
        }
    }
}

/// Chunked operator-at-a-time execution configuration.
///
/// Narrow transformations (`map`, `filter`, `flat_map` and the explicit
/// `*_batches` operators) and the shuffle map side move records through the
/// DAG in contiguous `Vec<T>` slabs ([`crate::Chunk`]) of at most
/// `target_chunk_records` rows. Each chunk pays one dispatch cost
/// ([`CostModelConfig::chunk_dispatch_ns`]) regardless of how many records
/// it carries, so larger chunks amortize per-record closure dispatch the
/// same way morsels amortize task launch. Output is bit-identical for every
/// chunk size — chunks are processed sequentially, in order, within a task.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Target records per chunk. `1` degenerates to record-at-a-time
    /// dispatch (the pre-batch behaviour and the bench baseline);
    /// `usize::MAX` hands each partition to the operator as one slab.
    pub target_chunk_records: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            target_chunk_records: Self::DEFAULT_CHUNK_RECORDS,
        }
    }
}

impl BatchConfig {
    /// Default chunk size: large enough that the per-chunk dispatch cost is
    /// noise next to per-record work, small enough that chunks stay
    /// cache-resident and can later become the spill unit.
    pub const DEFAULT_CHUNK_RECORDS: usize = 1024;

    /// Record-at-a-time dispatch: every record is its own chunk and pays
    /// its own dispatch cost. The baseline `bench_ops` gates against.
    pub fn row_at_a_time() -> Self {
        BatchConfig {
            target_chunk_records: 1,
        }
    }

    /// Chunking disabled: each partition moves as a single slab.
    pub fn unchunked() -> Self {
        BatchConfig {
            target_chunk_records: usize::MAX,
        }
    }
}

/// Out-of-core execution configuration.
///
/// The engine accounts two per-executor memory pools: the cache pool
/// ([`crate::storage::BlockManager`], `STORAGE_FRACTION` of executor
/// memory) and a resident-shuffle pool (`shuffle_fraction` of executor
/// memory, Spark's `spark.shuffle.memoryFraction`). A shuffle write that
/// would push an executor's resident map outputs over the pool — or a
/// cache block that does not fit its pool — goes to a per-executor spill
/// file instead, provided a spill codec is registered for the element type
/// (see [`crate::spill::SpillManager`]). With `enabled = false` the pool
/// limits are still enforced: an over-budget shuffle write fails the task
/// with [`crate::SparkletError::MemoryExceeded`] (the paper's Fig. 8b abort
/// regime), and over-budget cache blocks are dropped and recomputed from
/// lineage on access.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpillConfig {
    /// Whether the disk tier is available. Off: the memory caps become hard
    /// limits (shuffle writes error, cache blocks drop).
    pub enabled: bool,
    /// Fraction of [`ClusterConfig::memory_per_executor`] that shuffle map
    /// outputs may keep resident per executor. Values `<= 0` disable the
    /// resident-shuffle cap entirely (pre-spill behaviour).
    pub shuffle_fraction: f64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            enabled: true,
            shuffle_fraction: Self::DEFAULT_SHUFFLE_FRACTION,
        }
    }
}

impl SpillConfig {
    /// Default resident-shuffle fraction (Spark 1.x's
    /// `spark.shuffle.memoryFraction` default).
    pub const DEFAULT_SHUFFLE_FRACTION: f64 = 0.2;

    /// Disk tier off, caps still enforced: over-budget shuffle writes fail
    /// the task and over-budget cache blocks are dropped. The baseline
    /// `bench_spill` aborts against.
    pub fn disabled() -> Self {
        SpillConfig {
            enabled: false,
            ..SpillConfig::default()
        }
    }

    /// Resident-shuffle byte budget per executor for a given executor
    /// memory size; `usize::MAX` when the cap is disabled.
    pub fn shuffle_capacity(&self, memory_per_executor: usize) -> usize {
        if self.shuffle_fraction <= 0.0 {
            usize::MAX
        } else {
            (memory_per_executor as f64 * self.shuffle_fraction) as usize
        }
    }
}

/// Deterministic fault injection: per-attempt failures plus a scheduled
/// executor-failure domain.
///
/// Per-attempt faults fire when a keyed hash of
/// `(job, stage, task, attempt, seed)` falls below `task_failure_prob`.
/// Executor kills are a fixed schedule ([`ExecutorKill`]) processed by the
/// scheduler at deterministic points (stage starts and task-completion
/// counts), so a given `FaultConfig` produces the same failure history on
/// every run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that any given task attempt fails.
    pub task_failure_prob: f64,
    /// Seed mixed into the per-attempt hash; changing it reshuffles which
    /// attempts fail while keeping the overall rate.
    pub seed: u64,
    /// Scheduled executor failures, processed in order. Each kill evicts
    /// the executor's cached blocks, invalidates its shuffle map outputs
    /// and discards its in-flight task results.
    pub executor_kills: Vec<ExecutorKill>,
    /// Kills an executor survives before it is blacklisted (Spark's
    /// `spark.blacklist` family). Below the budget a killed executor
    /// restarts empty with a new incarnation; at the budget it is removed
    /// from scheduling for the rest of the run.
    pub max_executor_failures: u32,
    /// Kill the *driver* at the `n`-th driver-side fault point (0-based,
    /// counted across the cluster's lifetime by
    /// [`crate::Cluster::driver_fault_point`]). Driver-level services (e.g.
    /// the dedup ingest loop) pepper their commit protocol with fault
    /// points; arming this makes exactly one of them return
    /// [`crate::SparkletError::DriverKilled`], which is fatal — recovery
    /// happens from a durable checkpoint, not in process. `None` disables.
    pub driver_kill: Option<u64>,
}

/// One scheduled executor failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutorKill {
    /// Executor id to kill (`0..num_executors`).
    pub executor: usize,
    /// When the kill fires.
    pub when: KillWhen,
}

/// Trigger point of an [`ExecutorKill`]. Both variants are evaluated at
/// deterministic scheduler points, never on wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KillWhen {
    /// Fire at the start of the first stage whose virtual-clock reading is
    /// at or past `us` (kills between stages; fully deterministic recovery
    /// counts).
    AtVirtualTime {
        /// Virtual-clock threshold in microseconds.
        us: u64,
    },
    /// Fire while the named stage runs, once `after_completions` of its
    /// tasks have completed (0 = at stage start). Matching is by exact
    /// stage name.
    InStage {
        /// Stage name to match.
        name: String,
        /// Completed tasks observed before the kill fires.
        after_completions: usize,
    },
}

impl FaultConfig {
    /// No injected faults.
    pub fn disabled() -> Self {
        FaultConfig {
            task_failure_prob: 0.0,
            seed: 0,
            executor_kills: Vec::new(),
            max_executor_failures: Self::DEFAULT_MAX_EXECUTOR_FAILURES,
            driver_kill: None,
        }
    }

    /// Default blacklist budget: one kill restarts the executor, the
    /// second removes it from scheduling.
    pub const DEFAULT_MAX_EXECUTOR_FAILURES: u32 = 2;

    /// Fail roughly `prob` of task attempts, deterministically.
    pub fn with_probability(prob: f64, seed: u64) -> Self {
        FaultConfig {
            task_failure_prob: prob.clamp(0.0, 1.0),
            seed,
            ..FaultConfig::disabled()
        }
    }

    /// Schedule a kill of `executor` at virtual time `us` (builder-style).
    pub fn kill_at_time(mut self, executor: usize, us: u64) -> Self {
        self.executor_kills.push(ExecutorKill {
            executor,
            when: KillWhen::AtVirtualTime { us },
        });
        self
    }

    /// Kill the driver at its `point`-th fault point (builder-style). See
    /// [`FaultConfig::driver_kill`].
    pub fn kill_driver_at_point(mut self, point: u64) -> Self {
        self.driver_kill = Some(point);
        self
    }

    /// Schedule a kill of `executor` during stage `name`, after
    /// `after_completions` of its tasks completed (builder-style).
    pub fn kill_in_stage(mut self, executor: usize, name: &str, after_completions: usize) -> Self {
        self.executor_kills.push(ExecutorKill {
            executor,
            when: KillWhen::InStage {
                name: name.to_string(),
                after_completions,
            },
        });
        self
    }
}

/// Parameters of the virtual-time cost model (see [`crate::simtime`]).
///
/// A task's virtual duration is
/// `launch_overhead_us + ops * op_ns / 1000 + shuffle_bytes * shuffle_byte_ns
/// / 1000`, plus `retry_penalty_us` and the wasted attempt cost for every
/// failed attempt. Stage makespans additionally pay a coordination cost per
/// participating executor, which is what bends the executor-scaling curve of
/// the paper's Fig. 10 away from linear.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModelConfig {
    /// Fixed scheduling/serialisation overhead per task attempt (µs).
    pub task_launch_overhead_us: u64,
    /// Virtual nanoseconds per charged operation (a "charged operation" is
    /// whatever the domain code calls [`crate::TaskContext::charge_ops`]
    /// for — one report-pair distance computation in `fastknn`).
    pub op_ns: u64,
    /// Virtual nanoseconds per record emitted by a task.
    pub record_ns: u64,
    /// Virtual nanoseconds per byte written to or read from the shuffle.
    pub shuffle_byte_ns: u64,
    /// Flat penalty added to a task's duration for each failed attempt
    /// (models Spark's timeout detection + rescheduling delay).
    pub retry_penalty_us: u64,
    /// Per-stage, per-executor coordination cost (µs); models driver RPC,
    /// connection setup and skewed shuffle fetch, growing with cluster size.
    pub coordination_us_per_executor: u64,
    /// Launch overhead for the second and later morsels of a partition (µs).
    /// The first morsel pays the full `task_launch_overhead_us`
    /// (serialisation, closure shipping); follow-up morsels of the same
    /// partition only pay queue dispatch. Keeps an unsplit morsel stage
    /// exactly as expensive as the equivalent `run_job` stage.
    pub morsel_dispatch_overhead_us: u64,
    /// Virtual nanoseconds charged per chunk dispatched on the batch path
    /// (closure call, bounds setup, downstream handoff). With
    /// [`BatchConfig::row_at_a_time`] every record pays this; at the
    /// default chunk size it is amortized ~1000× — the gap `bench_ops`
    /// measures.
    pub chunk_dispatch_ns: u64,
    /// Virtual nanoseconds per byte serialized to a spill file when a
    /// shuffle bucket or cache block overflows its memory pool. Higher than
    /// `shuffle_byte_ns`: spilling pays serialization plus disk write
    /// bandwidth, which is how spill pressure bends makespans.
    pub spill_write_ns: u64,
    /// Virtual nanoseconds per byte read back and deserialized from a spill
    /// file on fetch.
    pub spill_read_ns: u64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            task_launch_overhead_us: 20_000, // 20 ms, Spark-era task launch
            op_ns: 400,
            record_ns: 50,
            shuffle_byte_ns: 4,
            retry_penalty_us: 10_000_000, // 10 s timeout + reschedule
            coordination_us_per_executor: 20_000,
            morsel_dispatch_overhead_us: 500,
            chunk_dispatch_ns: 2_000, // 2 µs: boxed-closure call + slab handoff
            spill_write_ns: 12,       // ~85 MB/s sequential spill write (2016 disk)
            spill_read_ns: 8,         // read-back is sequential and page-cache friendly
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_config_has_one_core_per_executor() {
        let c = ClusterConfig::local(8);
        assert_eq!(c.num_executors, 8);
        assert_eq!(c.cores_per_executor, 1);
        assert_eq!(c.total_slots(), 8);
    }

    #[test]
    fn zero_parallelism_is_clamped() {
        let c = ClusterConfig::local(0);
        assert_eq!(c.total_slots(), 1);
    }

    #[test]
    fn worker_threads_are_capped() {
        let mut c = ClusterConfig::local(1);
        c.num_executors = 100;
        c.cores_per_executor = 4;
        assert_eq!(c.worker_threads(), ClusterConfig::MAX_WORKER_THREADS);
    }

    #[test]
    fn fault_probability_is_clamped() {
        assert_eq!(FaultConfig::with_probability(7.0, 1).task_failure_prob, 1.0);
        assert_eq!(
            FaultConfig::with_probability(-1.0, 1).task_failure_prob,
            0.0
        );
    }

    #[test]
    fn static_placement_disables_splitting_and_stealing() {
        let s = SchedConfig::static_placement();
        assert_eq!(s.morsel_ops, u64::MAX);
        assert!(!s.steal);
        let d = SchedConfig::default();
        assert!(d.steal, "morsel scheduling is the default");
        assert!(d.morsel_ops < u64::MAX);
    }

    #[test]
    fn batch_config_presets_cover_the_extremes() {
        let d = BatchConfig::default();
        assert_eq!(d.target_chunk_records, BatchConfig::DEFAULT_CHUNK_RECORDS);
        assert_eq!(BatchConfig::row_at_a_time().target_chunk_records, 1);
        assert_eq!(BatchConfig::unchunked().target_chunk_records, usize::MAX);
        assert!(
            CostModelConfig::default().chunk_dispatch_ns > 0,
            "row-at-a-time must cost something for the batch path to amortize"
        );
    }

    #[test]
    fn spill_capacity_follows_the_fraction() {
        let s = SpillConfig::default();
        assert!(s.enabled, "the disk tier is on by default");
        assert_eq!(s.shuffle_capacity(1000), 200);
        let off = SpillConfig {
            shuffle_fraction: 0.0,
            ..SpillConfig::default()
        };
        assert_eq!(off.shuffle_capacity(1000), usize::MAX, "cap disabled");
        assert!(!SpillConfig::disabled().enabled);
        let c = CostModelConfig::default();
        assert!(
            c.spill_write_ns > c.shuffle_byte_ns,
            "spilling must cost more than keeping bytes resident"
        );
    }

    #[test]
    fn driver_kill_builder_arms_one_point() {
        assert_eq!(FaultConfig::disabled().driver_kill, None);
        let f = FaultConfig::disabled().kill_driver_at_point(12);
        assert_eq!(f.driver_kill, Some(12));
        assert!(f.executor_kills.is_empty(), "orthogonal to executor kills");
    }

    #[test]
    fn kill_builders_append_in_order() {
        let f = FaultConfig::disabled()
            .kill_at_time(1, 5_000)
            .kill_in_stage(2, "classify", 3);
        assert_eq!(f.executor_kills.len(), 2);
        assert_eq!(f.executor_kills[0].executor, 1);
        assert_eq!(
            f.executor_kills[0].when,
            KillWhen::AtVirtualTime { us: 5_000 }
        );
        assert_eq!(
            f.executor_kills[1].when,
            KillWhen::InStage {
                name: "classify".into(),
                after_completions: 3
            }
        );
    }
}
