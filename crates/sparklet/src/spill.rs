//! Disk tier for out-of-core execution: per-executor spill files plus the
//! codec registry that serializes typed payloads into them.
//!
//! Both memory pools of the engine overflow here. The
//! [`crate::storage::BlockManager`] spills cache blocks instead of dropping
//! them when a codec for the block's element type is registered, and the
//! [`crate::shuffle::ShuffleService`] spills whole map outputs once an
//! executor's resident shuffle bytes exceed the
//! [`crate::SpillConfig::shuffle_fraction`] pool. Lineage recompute remains
//! the *last* resort: it is only taken when no codec exists (cache) or the
//! spill file died with its executor (shuffle → `FetchFailed` → recovery).
//!
//! # Codecs
//!
//! Engine payloads are type-erased `Arc<Vec<T>>` behind `Arc<dyn Any>`, and
//! Rust has no reflection, so the registry maps `TypeId::of::<Vec<T>>()` to
//! a pair of closures installed by whoever knows `T`:
//!
//! * [`SpillManager::register_fixed`] covers any [`FixedBytes`] type —
//!   primitives, tuples and arrays of them serialize at a fixed width with
//!   no per-element allocation. A small set of common element types is
//!   pre-registered.
//! * [`SpillManager::register_codec`] takes explicit encode/decode closures
//!   for variable-length types. This is how `fastknn` registers its
//!   `VecBatch` payloads **column-wise** (ids, labels, then each `f64`
//!   column contiguously) — the spill format mirrors the SoA layout instead
//!   of re-rowifying.
//!
//! Round-trips must be byte-exact (`f64` travels as `to_bits`), which is
//! what keeps pinned detection digests bit-identical with spill forced on.
//!
//! # Files and failure domain
//!
//! Each executor appends to one spill file per incarnation under a
//! process-unique temp directory. Killing an executor bumps its spill
//! incarnation and deletes the file — a [`SpillSlot`] from the old
//! incarnation then refuses to read, exactly like a Spark node loss taking
//! its local shuffle files with it. The directory is removed when the last
//! cluster handle drops.

use crate::metrics::ClusterMetrics;
use crate::task;
use parking_lot::{Mutex, RwLock};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Location of one spilled payload inside an executor's spill file.
///
/// The slot is only valid for the spill-file incarnation it was written
/// under; [`SpillManager::read`] returns `None` for slots orphaned by an
/// executor kill, which callers surface as a fetch failure so lineage
/// recovery can run.
#[derive(Debug, Clone)]
pub struct SpillSlot {
    executor: usize,
    incarnation: u64,
    offset: u64,
    len: u64,
    type_key: TypeId,
}

impl SpillSlot {
    /// Encoded payload size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the encoded payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Executor whose spill file holds this payload.
    pub fn executor(&self) -> usize {
        self.executor
    }
}

/// Fixed-width byte serialization for POD-ish element types.
///
/// Implemented for the integer/float primitives, `bool`, 2- and 3-tuples
/// and const-size arrays of implementors. Downstream crates implement it
/// for their own `Copy` types (e.g. `fastknn`'s fixed-arity pair vectors)
/// and register them with [`SpillManager::register_fixed`].
pub trait FixedBytes: Sized + Send + Sync + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append exactly [`FixedBytes::WIDTH`] bytes to `out`.
    fn write_to(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`FixedBytes::WIDTH`] bytes.
    fn read_from(bytes: &[u8]) -> Self;
}

macro_rules! fixed_bytes_int {
    ($($t:ty),*) => {$(
        impl FixedBytes for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_from(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("fixed width"))
            }
        }
    )*};
}

fixed_bytes_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl FixedBytes for usize {
    const WIDTH: usize = 8;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("fixed width")) as usize
    }
}

impl FixedBytes for bool {
    const WIDTH: usize = 1;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn read_from(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

// Floats travel as raw bits: the round-trip must be byte-exact (NaN
// payloads and signed zeros included) for pinned digests to survive spill.
impl FixedBytes for f32 {
    const WIDTH: usize = 4;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        f32::from_bits(u32::from_le_bytes(bytes.try_into().expect("fixed width")))
    }
}

impl FixedBytes for f64 {
    const WIDTH: usize = 8;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("fixed width")))
    }
}

impl<A: FixedBytes, B: FixedBytes> FixedBytes for (A, B) {
    const WIDTH: usize = A::WIDTH + B::WIDTH;
    fn write_to(&self, out: &mut Vec<u8>) {
        self.0.write_to(out);
        self.1.write_to(out);
    }
    fn read_from(bytes: &[u8]) -> Self {
        (
            A::read_from(&bytes[..A::WIDTH]),
            B::read_from(&bytes[A::WIDTH..]),
        )
    }
}

impl<A: FixedBytes, B: FixedBytes, C: FixedBytes> FixedBytes for (A, B, C) {
    const WIDTH: usize = A::WIDTH + B::WIDTH + C::WIDTH;
    fn write_to(&self, out: &mut Vec<u8>) {
        self.0.write_to(out);
        self.1.write_to(out);
        self.2.write_to(out);
    }
    fn read_from(bytes: &[u8]) -> Self {
        (
            A::read_from(&bytes[..A::WIDTH]),
            B::read_from(&bytes[A::WIDTH..A::WIDTH + B::WIDTH]),
            C::read_from(&bytes[A::WIDTH + B::WIDTH..]),
        )
    }
}

impl<T: FixedBytes, const N: usize> FixedBytes for [T; N] {
    const WIDTH: usize = T::WIDTH * N;
    fn write_to(&self, out: &mut Vec<u8>) {
        for x in self {
            x.write_to(out);
        }
    }
    fn read_from(bytes: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&bytes[i * T::WIDTH..(i + 1) * T::WIDTH]))
    }
}

type ErasedEncode = Box<dyn Fn(&(dyn Any + Send + Sync)) -> Option<Vec<u8>> + Send + Sync>;
type ErasedDecode = Box<dyn Fn(&[u8]) -> Option<Arc<dyn Any + Send + Sync>> + Send + Sync>;

struct Codec {
    encode: ErasedEncode,
    decode: ErasedDecode,
}

/// Write-side state of one executor's spill file.
struct ExecFile {
    /// Append handle; `None` until the first spill of this incarnation.
    file: Option<File>,
    path: PathBuf,
    incarnation: u64,
    offset: u64,
}

struct SpillInner {
    dir: PathBuf,
    enabled: bool,
    shuffle_capacity: usize,
    codecs: RwLock<HashMap<TypeId, Codec>>,
    execs: Vec<Mutex<ExecFile>>,
    /// Resident bytes per executor across both pools (cache used + shuffle
    /// resident), maintained by the block manager and shuffle service.
    resident: Vec<AtomicU64>,
    /// High-water mark of `resident`, per executor.
    peak: Vec<AtomicU64>,
    metrics: ClusterMetrics,
}

impl Drop for SpillInner {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Process-unique suffix so concurrent clusters (and test threads) never
/// share a spill directory.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// The disk tier: codec registry, per-executor spill files and joint
/// resident-memory accounting. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct SpillManager {
    inner: Arc<SpillInner>,
}

impl SpillManager {
    /// Create a disk tier for `num_executors` executors.
    ///
    /// `shuffle_capacity` is the per-executor resident-shuffle byte budget
    /// (see [`crate::SpillConfig::shuffle_capacity`]); `enabled` selects
    /// spill-vs-fail when a pool overflows. No directory or file is created
    /// until the first actual spill.
    pub fn new(
        num_executors: usize,
        enabled: bool,
        shuffle_capacity: usize,
        metrics: ClusterMetrics,
    ) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sparklet-spill-{}-{}", std::process::id(), seq));
        let execs = (0..num_executors.max(1))
            .map(|e| {
                Mutex::new(ExecFile {
                    file: None,
                    path: dir.join(format!("exec-{e}-0.spill")),
                    incarnation: 0,
                    offset: 0,
                })
            })
            .collect();
        let n = num_executors.max(1);
        let mgr = SpillManager {
            inner: Arc::new(SpillInner {
                dir,
                enabled,
                shuffle_capacity,
                codecs: RwLock::new(HashMap::new()),
                execs,
                resident: (0..n).map(|_| AtomicU64::new(0)).collect(),
                peak: (0..n).map(|_| AtomicU64::new(0)).collect(),
                metrics,
            }),
        };
        mgr.register_default_codecs();
        mgr
    }

    /// Whether the disk tier may absorb overflow (vs. failing/dropping).
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Per-executor resident-shuffle byte budget.
    pub fn shuffle_capacity(&self) -> usize {
        self.inner.shuffle_capacity
    }

    /// Register encode/decode closures for element type `T`. Payloads are
    /// whole `Vec<T>` slabs (a cache block or one shuffle bucket); `encode`
    /// appends to the output buffer, `decode` must reproduce the vector
    /// byte-exactly or return `None`. Re-registering replaces the codec.
    pub fn register_codec<T, E, D>(&self, encode: E, decode: D)
    where
        T: Send + Sync + 'static,
        E: Fn(&[T], &mut Vec<u8>) + Send + Sync + 'static,
        D: Fn(&[u8]) -> Option<Vec<T>> + Send + Sync + 'static,
    {
        let erased_encode: ErasedEncode = Box::new(move |any| {
            let v = <dyn Any>::downcast_ref::<Vec<T>>(any)?;
            let mut out = Vec::new();
            encode(v, &mut out);
            Some(out)
        });
        let erased_decode: ErasedDecode =
            Box::new(move |bytes| decode(bytes).map(|v| Arc::new(v) as Arc<dyn Any + Send + Sync>));
        self.inner.codecs.write().insert(
            TypeId::of::<Vec<T>>(),
            Codec {
                encode: erased_encode,
                decode: erased_decode,
            },
        );
    }

    /// Register the canonical fixed-width codec for a [`FixedBytes`] type.
    pub fn register_fixed<T: FixedBytes>(&self) {
        self.register_codec::<T, _, _>(
            |items, out| {
                out.reserve(items.len() * T::WIDTH);
                for x in items {
                    x.write_to(out);
                }
            },
            |bytes| {
                if T::WIDTH == 0 || bytes.len() % T::WIDTH != 0 {
                    return None;
                }
                Some(bytes.chunks_exact(T::WIDTH).map(T::read_from).collect())
            },
        );
    }

    fn register_default_codecs(&self) {
        self.register_fixed::<u8>();
        self.register_fixed::<u32>();
        self.register_fixed::<u64>();
        self.register_fixed::<usize>();
        self.register_fixed::<i64>();
        self.register_fixed::<f64>();
        self.register_fixed::<(u32, u32)>();
        self.register_fixed::<(u64, u32)>();
        self.register_fixed::<(u64, u64)>();
        self.register_fixed::<(u64, f64)>();
        self.register_fixed::<(usize, u64)>();
        self.register_fixed::<[f64; 8]>();
    }

    /// Is a codec registered for the erased payload type of `data`
    /// (i.e. `Vec<T>` for the element type it holds)?
    pub fn has_codec_for(&self, data: &(dyn Any + Send + Sync)) -> bool {
        self.inner.codecs.read().contains_key(&data.type_id())
    }

    /// Serialize `data` (a type-erased `Vec<T>`) into `executor`'s spill
    /// file. Returns `None` when no codec is registered for the payload
    /// type. Charges [`crate::CostModelConfig::spill_write_ns`] per encoded
    /// byte to the current task, if any.
    ///
    /// Public so downstream crates can round-trip-test the codecs they
    /// register; the engine calls it from the block manager and shuffle
    /// service.
    pub fn write(&self, executor: usize, data: &(dyn Any + Send + Sync)) -> Option<SpillSlot> {
        let type_key = data.type_id();
        let encoded = {
            let codecs = self.inner.codecs.read();
            (codecs.get(&type_key)?.encode)(data)?
        };
        let mut exec = self.inner.execs[executor % self.inner.execs.len()].lock();
        if exec.file.is_none() {
            std::fs::create_dir_all(&self.inner.dir).ok()?;
            exec.file = Some(
                OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&exec.path)
                    .ok()?,
            );
            self.inner.metrics.spill_files_created.inc();
        }
        let offset = exec.offset;
        exec.file.as_mut()?.write_all(&encoded).ok()?;
        exec.offset += encoded.len() as u64;
        let slot = SpillSlot {
            executor: executor % self.inner.execs.len(),
            incarnation: exec.incarnation,
            offset,
            len: encoded.len() as u64,
            type_key,
        };
        drop(exec);
        self.inner.metrics.spill_bytes_written.add(slot.len);
        task::with_current(|ctx| {
            if let Some(ctx) = ctx {
                ctx.add_spill_write(slot.len);
            }
        });
        Some(slot)
    }

    /// Read a payload back from disk. Returns `None` when the slot's spill
    /// file died with its executor (the caller treats this like a lost
    /// shuffle output) or the bytes no longer decode. Charges
    /// [`crate::CostModelConfig::spill_read_ns`] per byte to the current
    /// task, if any.
    ///
    /// Public for the same reason as [`SpillManager::write`].
    pub fn read(&self, slot: &SpillSlot) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut buf = vec![0u8; slot.len as usize];
        {
            let exec = self.inner.execs[slot.executor].lock();
            if exec.incarnation != slot.incarnation {
                return None;
            }
            let mut f = File::open(&exec.path).ok()?;
            f.seek(SeekFrom::Start(slot.offset)).ok()?;
            f.read_exact(&mut buf).ok()?;
        }
        let decoded = {
            let codecs = self.inner.codecs.read();
            (codecs.get(&slot.type_key)?.decode)(&buf)?
        };
        self.inner.metrics.spill_bytes_read.add(slot.len);
        task::with_current(|ctx| {
            if let Some(ctx) = ctx {
                ctx.add_spill_read(slot.len);
            }
        });
        Some(decoded)
    }

    /// Drop `executor`'s spill file and invalidate every slot written to it
    /// (stale reads return `None`). Called on executor kills: the disk tier
    /// is executor-local, so it dies with the node.
    pub(crate) fn invalidate_executor(&self, executor: usize) {
        if self.inner.execs.is_empty() {
            return;
        }
        let mut exec = self.inner.execs[executor % self.inner.execs.len()].lock();
        exec.file = None;
        let _ = std::fs::remove_file(&exec.path);
        exec.incarnation += 1;
        exec.path = self.inner.dir.join(format!(
            "exec-{}-{}.spill",
            executor % self.inner.execs.len(),
            exec.incarnation
        ));
        exec.offset = 0;
    }

    /// Remove every spill file and reset resident accounting (between
    /// experiment runs; see [`crate::Cluster::reset_run_state`]).
    pub(crate) fn clear(&self) {
        for e in 0..self.inner.execs.len() {
            self.invalidate_executor(e);
        }
        for (r, p) in self.inner.resident.iter().zip(&self.inner.peak) {
            r.store(0, Ordering::Relaxed);
            p.store(0, Ordering::Relaxed);
        }
    }

    /// Account `bytes` newly resident on `executor` (cache or shuffle pool)
    /// and advance the peak high-water mark.
    pub(crate) fn add_resident(&self, executor: usize, bytes: u64) {
        let e = executor % self.inner.resident.len();
        let now = self.inner.resident[e].fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak[e].fetch_max(now, Ordering::Relaxed);
    }

    /// Account `bytes` released from `executor`'s resident pools.
    pub(crate) fn sub_resident(&self, executor: usize, bytes: u64) {
        let e = executor % self.inner.resident.len();
        let _ = self.inner.resident[e].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Current resident bytes per executor.
    pub fn resident(&self) -> Vec<u64> {
        self.inner
            .resident
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .collect()
    }

    /// Peak resident bytes per executor since the last reset — the job
    /// report's `peak_resident` row.
    pub fn peak_resident(&self) -> Vec<u64> {
        self.inner
            .peak
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }
}

impl std::fmt::Debug for SpillManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillManager")
            .field("enabled", &self.inner.enabled)
            .field("shuffle_capacity", &self.inner.shuffle_capacity)
            .field("peak_resident", &self.peak_resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> SpillManager {
        SpillManager::new(2, true, 1024, ClusterMetrics::new())
    }

    fn erase<T: Send + Sync + 'static>(v: Vec<T>) -> Arc<dyn Any + Send + Sync> {
        Arc::new(v)
    }

    fn unerase<T: Clone + 'static>(any: &Arc<dyn Any + Send + Sync>) -> Vec<T> {
        <dyn Any>::downcast_ref::<Vec<T>>(&**any)
            .expect("payload type")
            .clone()
    }

    #[test]
    fn fixed_types_round_trip() {
        let m = mgr();
        let data: Vec<(u64, f64)> = (0..100).map(|i| (i, i as f64 * -0.5)).collect();
        let payload = erase(data.clone());
        let slot = m.write(0, &*payload).expect("codec pre-registered");
        assert_eq!(slot.len(), 100 * 16);
        let back = m.read(&slot).expect("slot valid");
        assert_eq!(unerase::<(u64, f64)>(&back), data);
    }

    #[test]
    fn float_bits_survive_exactly() {
        let m = mgr();
        let data = vec![f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0];
        let slot = m.write(1, &*erase(data.clone())).unwrap();
        let back = unerase::<f64>(&m.read(&slot).unwrap());
        let bits: Vec<u64> = back.iter().map(|x| x.to_bits()).collect();
        let expect: Vec<u64> = data.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, expect, "spill must be bit-exact, NaN included");
    }

    #[test]
    fn unregistered_types_refuse_to_spill() {
        let m = mgr();
        #[derive(Clone)]
        struct Opaque(#[allow(dead_code)] String);
        let payload = erase(vec![Opaque("x".into())]);
        assert!(!m.has_codec_for(&*payload));
        assert!(m.write(0, &*payload).is_none());
    }

    #[test]
    fn custom_codec_handles_variable_length() {
        let m = mgr();
        m.register_codec::<String, _, _>(
            |items, out| {
                for s in items {
                    (s.len() as u64).write_to(out);
                    out.extend_from_slice(s.as_bytes());
                }
            },
            |bytes| {
                let mut v = Vec::new();
                let mut i = 0;
                while i < bytes.len() {
                    let n = u64::read_from(bytes.get(i..i + 8)?) as usize;
                    i += 8;
                    v.push(String::from_utf8(bytes.get(i..i + n)?.to_vec()).ok()?);
                    i += n;
                }
                Some(v)
            },
        );
        let data = vec!["adr".to_string(), "".to_string(), "réaction".to_string()];
        let slot = m.write(0, &*erase(data.clone())).unwrap();
        assert_eq!(unerase::<String>(&m.read(&slot).unwrap()), data);
    }

    #[test]
    fn slots_interleave_within_one_file() {
        let m = mgr();
        let a = m.write(0, &*erase(vec![1u64, 2, 3])).unwrap();
        let b = m.write(0, &*erase((0..50u32).collect::<Vec<_>>())).unwrap();
        let c = m.write(0, &*erase(vec![9u64])).unwrap();
        assert_eq!(unerase::<u64>(&m.read(&c).unwrap()), vec![9]);
        assert_eq!(unerase::<u64>(&m.read(&a).unwrap()), vec![1, 2, 3]);
        assert_eq!(
            unerase::<u32>(&m.read(&b).unwrap()),
            (0..50).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn killing_an_executor_orphans_its_slots() {
        let m = mgr();
        let before = m.write(0, &*erase(vec![7u8; 16])).unwrap();
        let other = m.write(1, &*erase(vec![8u8; 16])).unwrap();
        m.invalidate_executor(0);
        assert!(m.read(&before).is_none(), "stale incarnation must not read");
        assert!(m.read(&other).is_some(), "executor 1's file is untouched");
        let after = m.write(0, &*erase(vec![9u8; 4])).unwrap();
        assert_eq!(unerase::<u8>(&m.read(&after).unwrap()), vec![9u8; 4]);
    }

    #[test]
    fn resident_accounting_tracks_the_peak() {
        let m = mgr();
        m.add_resident(0, 100);
        m.add_resident(0, 400);
        m.sub_resident(0, 300);
        m.add_resident(1, 50);
        assert_eq!(m.resident(), vec![200, 50]);
        assert_eq!(m.peak_resident(), vec![500, 50]);
        m.sub_resident(0, 10_000); // saturates, never underflows
        assert_eq!(m.resident()[0], 0);
        m.clear();
        assert_eq!(m.peak_resident(), vec![0, 0]);
    }

    #[test]
    fn spill_metrics_count_bytes_both_ways() {
        let metrics = ClusterMetrics::new();
        let m = SpillManager::new(1, true, 64, metrics.clone());
        let slot = m.write(0, &*erase(vec![0u64; 10])).unwrap();
        m.read(&slot).unwrap();
        assert_eq!(metrics.spill_bytes_written.get(), 80);
        assert_eq!(metrics.spill_bytes_read.get(), 80);
        assert_eq!(metrics.spill_files_created.get(), 1);
    }
}
