//! # sparklet — an embedded Spark-like dataflow engine
//!
//! `sparklet` reimplements, in-process and from scratch, the subset of the
//! Apache Spark programming model that the EDBT'16 paper *"Parallel Duplicate
//! Detection in Adverse Drug Reaction Databases with Spark"* (Wang & Karimi)
//! expresses its algorithms in:
//!
//! * **Resilient datasets** ([`Rdd`]) — immutable, partitioned collections
//!   described by a lineage graph of transformation nodes. Narrow
//!   transformations (`map`, `filter`, `flat_map`, …) are pipelined inside a
//!   single task; wide transformations (`partition_by`, `group_by_key`,
//!   `join`, `cogroup`, …) cut a stage boundary and go through the
//!   [`shuffle`] service.
//! * **Actions** (`collect`, `count`, `reduce`, `aggregate`, …) — walk the
//!   lineage, materialise shuffle dependencies stage by stage, and submit one
//!   task per partition to the [`Cluster`] scheduler.
//! * **Caching** ([`Rdd::cache`]) — computed partitions are pinned in the
//!   [`storage::BlockManager`] subject to a per-executor memory budget with
//!   LRU eviction; evicted partitions are recomputed from lineage, mirroring
//!   RDD fault-tolerance semantics.
//! * **Task scheduling with retries** — tasks can fail (via deterministic
//!   fault injection, or by exceeding the modelled executor memory budget)
//!   and are retried with a virtual-time penalty, reproducing the retry
//!   storms the paper observes when joined partitions do not fit in executor
//!   memory (its Fig. 8b).
//! * **Metrics** ([`metrics::ClusterMetrics`]) — tasks, retries, shuffle
//!   records/bytes, cache hits, plus named user counters (the paper's
//!   intra-/cross-cluster comparison counts hang off these).
//! * **Virtual time** ([`simtime`]) — every task accrues a virtual cost
//!   (charged operations, shuffle bytes, launch overhead, retry penalties);
//!   a deterministic list scheduler then computes the makespan for any
//!   executor topology. This substitutes for wall-clock measurements on the
//!   paper's 14-node cluster, which are not reproducible on a single
//!   machine (see `DESIGN.md`).
//!
//! ## Quick example
//!
//! ```
//! use sparklet::Cluster;
//!
//! let cluster = Cluster::local(4);
//! let data = cluster.parallelize((0..1000u64).collect::<Vec<_>>(), 8);
//! let sum = data
//!     .map(|x| x * 2)
//!     .filter(|x| x % 3 == 0)
//!     .aggregate(0u64, |acc, x| acc + x, |a, b| a + b)
//!     .unwrap();
//! assert_eq!(sum, (0..1000u64).map(|x| x * 2).filter(|x| x % 3 == 0).sum());
//! ```

pub mod cluster;
pub mod config;
pub mod error;
pub mod executor;
pub mod hash;
pub mod journal;
pub mod metrics;
pub mod pair;
pub mod partitioner;
pub mod rdd;
pub mod report;
pub mod shuffle;
pub mod simtime;
pub mod spill;
pub mod storage;
pub mod task;

pub use cluster::Cluster;
pub use config::{
    BatchConfig, ClusterConfig, CostModelConfig, ExecutorKill, FaultConfig, KillWhen, SchedConfig,
    SpillConfig,
};
pub use error::{Result, SparkletError};
pub use executor::{ExecutorInfo, ExecutorRegistry, KillOutcome};
pub use hash::{stable_hash, SipHasher13};
pub use journal::{
    BatchReport, Event, EventKind, IngestBatchRow, IngestReport, JobReport, PruneReport,
    RecoveryReport, RunJournal, SchedReport, ServeReport, WorkerUtilization, SERVE_HIST_BUCKETS,
};
pub use metrics::ClusterMetrics;
pub use pair::PairRdd;
pub use partitioner::{HashPartitioner, Partitioner};
pub use rdd::{Chunk, Rdd};
pub use report::ClusterReport;
pub use simtime::{simulate_morsels, MorselInfo, SchedSim};
pub use spill::{FixedBytes, SpillManager};
pub use task::TaskContext;

/// Marker trait for element types that can flow through the engine.
///
/// Blanket-implemented: anything `Clone + Send + Sync + 'static` qualifies.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Marker trait for key types usable in pair-RDD (shuffle) operations.
pub trait KeyData: Data + std::hash::Hash + Eq {}
impl<T: Data + std::hash::Hash + Eq> KeyData for T {}
