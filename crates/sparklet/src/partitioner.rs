//! Key partitioners for shuffle operations.

use crate::hash::stable_hash;
use std::hash::Hash;
use std::marker::PhantomData;

/// Maps keys to reduce-side partitions.
///
/// Implementations must be deterministic: sparklet recomputes partitions
/// from lineage after cache eviction or task retry, so the same key must
/// always land in the same bucket.
pub trait Partitioner<K>: Send + Sync + 'static {
    /// Number of output partitions.
    fn num_partitions(&self) -> usize;
    /// Partition index in `0..num_partitions()` for `key`.
    fn partition(&self, key: &K) -> usize;
    /// Append the partition index of every key in `keys` to `out`, in
    /// order. The shuffle's batched bucketing path calls this once per
    /// chunk, so a concrete partitioner pays one virtual dispatch per chunk
    /// and resolves the per-key work statically; the default falls back to
    /// per-key [`Partitioner::partition`] and must stay bit-identical to it.
    fn partition_batch(&self, keys: &mut dyn Iterator<Item = &K>, out: &mut Vec<usize>) {
        out.extend(keys.map(|k| self.partition(k)));
    }
}

/// Hash partitioner over the crate-owned keyed SipHash-1-3
/// ([`crate::hash::stable_hash`]) — deterministic across processes, runs
/// *and Rust releases*, unlike `RandomState` or `DefaultHasher` (whose
/// algorithm std reserves the right to change). Bucket assignments are
/// pinned by a golden test below.
pub struct HashPartitioner<K> {
    partitions: usize,
    _marker: PhantomData<fn(&K)>,
}

impl<K> HashPartitioner<K> {
    /// Create a hash partitioner with `partitions` buckets (min 1).
    pub fn new(partitions: usize) -> Self {
        HashPartitioner {
            partitions: partitions.max(1),
            _marker: PhantomData,
        }
    }
}

impl<K> Clone for HashPartitioner<K> {
    fn clone(&self) -> Self {
        HashPartitioner {
            partitions: self.partitions,
            _marker: PhantomData,
        }
    }
}

impl<K: Hash + Send + Sync + 'static> Partitioner<K> for HashPartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn partition(&self, key: &K) -> usize {
        (stable_hash(key) % self.partitions as u64) as usize
    }

    fn partition_batch(&self, keys: &mut dyn Iterator<Item = &K>, out: &mut Vec<usize>) {
        let n = self.partitions as u64;
        out.extend(keys.map(|k| (stable_hash(k) % n) as usize));
    }
}

/// Partitioner that interprets keys directly as partition indices
/// (`key % partitions`). Used when the producer already assigned cluster IDs,
/// as Algorithm 2's join on Voronoi cluster IDs does.
pub struct IndexPartitioner {
    partitions: usize,
}

impl IndexPartitioner {
    /// Create an index partitioner with `partitions` buckets (min 1).
    pub fn new(partitions: usize) -> Self {
        IndexPartitioner {
            partitions: partitions.max(1),
        }
    }
}

impl Partitioner<usize> for IndexPartitioner {
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn partition(&self, key: &usize) -> usize {
        key % self.partitions
    }

    fn partition_batch(&self, keys: &mut dyn Iterator<Item = &usize>, out: &mut Vec<usize>) {
        out.extend(keys.map(|k| k % self.partitions));
    }
}

/// Range partitioner over `Ord` keys: partition `i` receives keys in
/// `(splitters[i-1], splitters[i]]`. Built from sampled keys by
/// [`crate::Rdd::sort_by`]; the splitters must be sorted.
pub struct RangePartitioner<K: Ord> {
    splitters: Vec<K>,
}

impl<K: Ord> RangePartitioner<K> {
    /// Build from sorted splitters; yields `splitters.len() + 1` partitions.
    ///
    /// # Panics
    /// Panics if the splitters are not sorted.
    pub fn new(splitters: Vec<K>) -> Self {
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be sorted"
        );
        RangePartitioner { splitters }
    }
}

impl<K: Ord + Send + Sync + 'static> Partitioner<K> for RangePartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.splitters.len() + 1
    }

    fn partition(&self, key: &K) -> usize {
        self.splitters.partition_point(|s| s < key)
    }

    fn partition_batch(&self, keys: &mut dyn Iterator<Item = &K>, out: &mut Vec<usize>) {
        out.extend(keys.map(|k| self.splitters.partition_point(|s| s < k)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partitioner_routes_by_splitters() {
        let p = RangePartitioner::new(vec![10, 20, 30]);
        assert_eq!(p.num_partitions(), 4);
        // Partition i covers (splitters[i-1], splitters[i]].
        assert_eq!(p.partition(&5), 0);
        assert_eq!(p.partition(&10), 0);
        assert_eq!(p.partition(&15), 1);
        assert_eq!(p.partition(&20), 1);
        assert_eq!(p.partition(&21), 2);
        assert_eq!(p.partition(&35), 3);
    }

    #[test]
    fn range_partitioner_empty_splitters_is_single_partition() {
        let p = RangePartitioner::<u32>::new(vec![]);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition(&99), 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn range_partitioner_rejects_unsorted() {
        let _ = RangePartitioner::new(vec![3, 1]);
    }

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = HashPartitioner::<String>::new(7);
        for s in ["a", "bb", "ccc", "dddd", ""] {
            let k = s.to_string();
            let idx = p.partition(&k);
            assert!(idx < 7);
            assert_eq!(idx, p.partition(&k), "must be deterministic");
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::<u64>::new(8);
        let mut counts = vec![0usize; 8];
        for k in 0..800u64 {
            counts[p.partition(&k)] += 1;
        }
        // Every bucket should get something with 800 keys over 8 buckets.
        assert!(counts.iter().all(|&c| c > 0), "counts: {counts:?}");
    }

    #[test]
    fn hash_partitioner_golden_bucket_assignments() {
        // Pinned bucket indices: shuffle placement is part of the engine's
        // recorded behaviour. If this fails, the hash function changed and
        // recorded experiment outputs are no longer reproducible.
        let p8 = HashPartitioner::<u64>::new(8);
        let got: Vec<usize> = (0..16u64).map(|k| p8.partition(&k)).collect();
        assert_eq!(got, [5, 6, 3, 5, 6, 4, 3, 4, 1, 1, 2, 7, 5, 1, 0, 3]);
        let ps = HashPartitioner::<String>::new(5);
        let got: Vec<usize> = ["", "a", "drug", "reaction", "report-42"]
            .iter()
            .map(|s| ps.partition(&s.to_string()))
            .collect();
        assert_eq!(got, [4, 1, 4, 3, 0]);
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let p = HashPartitioner::<u64>::new(0);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition(&123), 0);
    }

    #[test]
    fn index_partitioner_is_modulo() {
        let p = IndexPartitioner::new(4);
        assert_eq!(p.partition(&0), 0);
        assert_eq!(p.partition(&5), 1);
        assert_eq!(p.partition(&11), 3);
    }

    #[test]
    fn partition_batch_matches_per_key_for_every_partitioner() {
        fn check<K, P: Partitioner<K>>(p: &P, keys: &[K]) {
            let mut batched = Vec::new();
            p.partition_batch(&mut keys.iter(), &mut batched);
            let singles: Vec<usize> = keys.iter().map(|k| p.partition(k)).collect();
            assert_eq!(batched, singles);
        }
        let keys: Vec<u64> = (0..64).map(|i| i * 7919 % 101).collect();
        check(&HashPartitioner::<u64>::new(8), &keys);
        let idx: Vec<usize> = (0..64).collect();
        check(&IndexPartitioner::new(5), &idx);
        let vals: Vec<u32> = (0..64).map(|i| i * 13 % 97).collect();
        check(&RangePartitioner::new(vec![20, 40, 60]), &vals);
    }
}
