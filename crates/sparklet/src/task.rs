//! Task execution context and per-task cost accounting.

use crate::config::CostModelConfig;
use crate::error::{Result, SparkletError};
use crate::metrics::{ClusterMetrics, Counter};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Execution context handed to every task attempt.
///
/// Carries identity (stage / task / attempt / executor), the cluster metrics
/// registry, and the per-attempt virtual-cost accumulators. Domain code can
/// reach the context of the currently running task through
/// [`with_current`] / [`charge_ops`] even from plain `map` closures, the way
/// Spark code reaches `TaskContext.get()`.
pub struct TaskContext {
    inner: Arc<TaskCtxInner>,
}

pub(crate) struct TaskCtxInner {
    pub stage: String,
    pub task: usize,
    pub attempt: u32,
    pub executor: usize,
    pub metrics: ClusterMetrics,
    pub cost: CostModelConfig,
    /// Operations charged by domain code this attempt.
    pub ops: AtomicU64,
    /// Records emitted by this attempt.
    pub records_out: AtomicU64,
    /// Chunks dispatched through the batch path by this attempt.
    pub chunks: AtomicU64,
    /// Shuffle bytes read/written by this attempt.
    pub shuffle_bytes: AtomicU64,
    /// Bytes this attempt serialized to spill files.
    pub spill_bytes_written: AtomicU64,
    /// Bytes this attempt read back from spill files.
    pub spill_bytes_read: AtomicU64,
    /// Peak resident bytes the task declared (see [`TaskContext::hold_memory`]).
    pub mem_held: AtomicUsize,
    /// Per-executor memory budget; exceeding it kills the attempt.
    pub memory_budget: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<TaskCtxInner>>> = const { RefCell::new(None) };
}

impl TaskContext {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stage: &str,
        task: usize,
        attempt: u32,
        executor: usize,
        metrics: ClusterMetrics,
        cost: CostModelConfig,
        memory_budget: usize,
    ) -> Self {
        TaskContext {
            inner: Arc::new(TaskCtxInner {
                stage: stage.to_string(),
                task,
                attempt,
                executor,
                metrics,
                cost,
                ops: AtomicU64::new(0),
                records_out: AtomicU64::new(0),
                chunks: AtomicU64::new(0),
                shuffle_bytes: AtomicU64::new(0),
                spill_bytes_written: AtomicU64::new(0),
                spill_bytes_read: AtomicU64::new(0),
                mem_held: AtomicUsize::new(0),
                memory_budget,
            }),
        }
    }

    /// Stage name this task belongs to.
    pub fn stage(&self) -> &str {
        &self.inner.stage
    }

    /// Partition / task index within the stage.
    pub fn task(&self) -> usize {
        self.inner.task
    }

    /// Attempt number, starting at 0.
    pub fn attempt(&self) -> u32 {
        self.inner.attempt
    }

    /// Virtual executor this attempt runs on.
    pub fn executor(&self) -> usize {
        self.inner.executor
    }

    /// Charge `n` abstract operations to this attempt's virtual cost.
    pub fn charge_ops(&self, n: u64) {
        self.inner.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` chunk dispatches to this attempt's virtual cost (one
    /// [`crate::CostModelConfig::chunk_dispatch_ns`] each). The batch
    /// operators call this once per chunk; record-level work is charged
    /// separately through `record_ns` and [`TaskContext::charge_ops`].
    pub fn add_chunks(&self, n: u64) {
        self.inner.chunks.fetch_add(n, Ordering::Relaxed);
        self.inner.metrics.chunks_executed.add(n);
    }

    /// Fetch (or create) a named user counter from the cluster metrics.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.metrics.counter(name)
    }

    /// Declare that the task holds `bytes` resident (e.g. a joined partition
    /// buffered for a hash join). When the cumulative held memory exceeds
    /// the executor budget the attempt fails with
    /// [`SparkletError::MemoryExceeded`] and is retried with a virtual-time
    /// penalty — modelling the swap/timeout/retry behaviour the paper
    /// reports for small cluster numbers (Fig. 8b). The number of forced
    /// failures grows with the overcommit ratio (each retry finds a bit
    /// more breathing room as caches are evicted), so overcommitted tasks
    /// eventually complete — slowly — rather than failing the job.
    pub fn hold_memory(&self, bytes: usize) -> Result<()> {
        let held = self.inner.mem_held.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if held > self.inner.memory_budget {
            let over = held as f64 / self.inner.memory_budget.max(1) as f64;
            let forced_failures = (over.ceil() as u32).min(3);
            if self.inner.attempt < forced_failures {
                self.inner.metrics.memory_kills.inc();
                return Err(SparkletError::MemoryExceeded {
                    requested: held,
                    budget: self.inner.memory_budget,
                });
            }
        }
        Ok(())
    }

    /// Release previously held memory.
    pub fn release_memory(&self, bytes: usize) {
        let _ = self
            .inner
            .mem_held
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    pub(crate) fn add_records_out(&self, n: u64) {
        self.inner.records_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_shuffle_bytes(&self, n: u64) {
        self.inner.shuffle_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` bytes of spill-file write I/O to this attempt
    /// ([`crate::CostModelConfig::spill_write_ns`] each).
    pub(crate) fn add_spill_write(&self, n: u64) {
        self.inner
            .spill_bytes_written
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` bytes of spill-file read-back I/O to this attempt
    /// ([`crate::CostModelConfig::spill_read_ns`] each).
    pub(crate) fn add_spill_read(&self, n: u64) {
        self.inner.spill_bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn raw_shuffle_bytes(&self) -> u64 {
        self.inner.shuffle_bytes.load(Ordering::Relaxed)
    }

    /// Virtual duration of this attempt so far, in microseconds.
    pub fn attempt_cost_us(&self) -> u64 {
        let c = &self.inner.cost;
        c.task_launch_overhead_us
            + self.inner.ops.load(Ordering::Relaxed) * c.op_ns / 1000
            + self.inner.records_out.load(Ordering::Relaxed) * c.record_ns / 1000
            + self.inner.shuffle_bytes.load(Ordering::Relaxed) * c.shuffle_byte_ns / 1000
            + self.inner.chunks.load(Ordering::Relaxed) * c.chunk_dispatch_ns / 1000
            + self.inner.spill_bytes_written.load(Ordering::Relaxed) * c.spill_write_ns / 1000
            + self.inner.spill_bytes_read.load(Ordering::Relaxed) * c.spill_read_ns / 1000
    }

    pub(crate) fn install(&self) -> CtxGuard {
        CURRENT.with(|c| *c.borrow_mut() = Some(self.inner.clone()));
        CtxGuard
    }
}

/// RAII guard that clears the thread-local current-task pointer.
pub(crate) struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Run `f` with the currently executing task's context, if any.
///
/// Outside a task (driver code, tests) the argument is `None`.
pub fn with_current<R>(f: impl FnOnce(Option<&TaskContext>) -> R) -> R {
    CURRENT.with(|c| {
        let borrowed = c.borrow();
        match borrowed.as_ref() {
            Some(inner) => {
                let ctx = TaskContext {
                    inner: inner.clone(),
                };
                f(Some(&ctx))
            }
            None => f(None),
        }
    })
}

/// Charge `n` operations to the currently running task (no-op outside one).
///
/// This is the hook domain algorithms use from inside plain `map`/`filter`
/// closures to drive the virtual clock.
pub fn charge_ops(n: u64) {
    with_current(|ctx| {
        if let Some(ctx) = ctx {
            ctx.charge_ops(n);
        }
    });
}

/// Increment a named user counter from inside a task (no-op outside one).
pub fn count(name: &str, n: u64) {
    with_current(|ctx| {
        if let Some(ctx) = ctx {
            ctx.counter(name).add(n);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TaskContext {
        TaskContext::new(
            "test",
            0,
            0,
            0,
            ClusterMetrics::new(),
            CostModelConfig {
                task_launch_overhead_us: 10,
                op_ns: 1000,
                record_ns: 2000,
                shuffle_byte_ns: 0,
                retry_penalty_us: 0,
                coordination_us_per_executor: 0,
                morsel_dispatch_overhead_us: 0,
                chunk_dispatch_ns: 3000,
                spill_write_ns: 4000,
                spill_read_ns: 2000,
            },
            1000,
        )
    }

    #[test]
    fn cost_accumulates_ops_and_records() {
        let c = ctx();
        c.charge_ops(5);
        c.add_records_out(3);
        // 10 overhead + 5*1 + 3*2
        assert_eq!(c.attempt_cost_us(), 10 + 5 + 6);
    }

    #[test]
    fn cost_charges_one_dispatch_per_chunk() {
        let c = ctx();
        c.add_chunks(4);
        // 10 overhead + 4 chunks * 3000 ns
        assert_eq!(c.attempt_cost_us(), 10 + 12);
    }

    #[test]
    fn cost_charges_spill_io_per_byte() {
        let c = ctx();
        c.add_spill_write(500);
        c.add_spill_read(250);
        // 10 overhead + 500 * 4000 ns + 250 * 2000 ns
        assert_eq!(c.attempt_cost_us(), 10 + 2000 + 500);
    }

    #[test]
    fn memory_budget_enforced() {
        let c = ctx();
        assert!(c.hold_memory(600).is_ok());
        let err = c.hold_memory(600).unwrap_err();
        assert!(matches!(err, SparkletError::MemoryExceeded { .. }));
    }

    #[test]
    fn release_memory_allows_reuse() {
        let c = ctx();
        c.hold_memory(800).unwrap();
        c.release_memory(800);
        assert!(c.hold_memory(900).is_ok());
    }

    #[test]
    fn late_attempts_survive_memory_pressure() {
        // Same overcommit, attempt 3: the forced-failure window (max 3) has
        // passed, the task completes slowly instead of failing forever.
        let c = TaskContext::new(
            "test",
            0,
            3,
            0,
            ClusterMetrics::new(),
            CostModelConfig::default(),
            1000,
        );
        assert!(c.hold_memory(5000).is_ok());
    }

    #[test]
    fn release_memory_saturates_at_zero() {
        let c = ctx();
        c.release_memory(1_000_000);
        assert!(c.hold_memory(999).is_ok());
    }

    #[test]
    fn thread_local_install_and_clear() {
        let c = ctx();
        with_current(|cur| assert!(cur.is_none()));
        {
            let _g = c.install();
            with_current(|cur| assert_eq!(cur.unwrap().stage(), "test"));
            charge_ops(7);
        }
        with_current(|cur| assert!(cur.is_none()));
        assert_eq!(c.attempt_cost_us(), 10 + 7);
    }

    #[test]
    fn count_no_ops_outside_task() {
        count("nothing", 3); // must not panic
    }
}
