//! Human-readable run reports: per-stage cost breakdown plus engine
//! counters — sparklet's stand-in for the Spark web UI's stage table.

use crate::cluster::Cluster;
use crate::simtime::StageRecord;
use std::fmt;

/// Aggregated view of one stage for display.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Stage name.
    pub name: String,
    /// Task count.
    pub tasks: usize,
    /// Total virtual task time (µs).
    pub total_us: u64,
    /// Largest single task (µs) — the skew indicator.
    pub max_task_us: u64,
    /// Shuffle bytes moved.
    pub shuffle_bytes: u64,
    /// Failed attempts.
    pub retries: u64,
}

impl StageSummary {
    fn from_record(r: &StageRecord) -> Self {
        StageSummary {
            name: r.name.clone(),
            tasks: r.task_us.len(),
            total_us: r.task_us.iter().sum(),
            max_task_us: r.task_us.iter().copied().max().unwrap_or(0),
            shuffle_bytes: r.shuffle_bytes,
            retries: r.retries,
        }
    }

    /// Skew factor: largest task over mean task (1.0 = perfectly even).
    pub fn skew(&self) -> f64 {
        if self.tasks == 0 || self.total_us == 0 {
            return 1.0;
        }
        self.max_task_us as f64 / (self.total_us as f64 / self.tasks as f64)
    }
}

/// A full run report, built from a cluster's recorded state.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-stage summaries in execution order.
    pub stages: Vec<StageSummary>,
    /// Jobs submitted.
    pub jobs: u64,
    /// Task attempts launched / failed.
    pub tasks_launched: u64,
    /// Failed task attempts.
    pub tasks_failed: u64,
    /// Cache hit / miss counts.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Virtual elapsed time on the cluster's own topology (µs).
    pub virtual_us: u64,
}

impl ClusterReport {
    /// Snapshot a cluster's recorded stages and counters.
    pub fn capture(cluster: &Cluster) -> Self {
        let m = cluster.metrics();
        ClusterReport {
            stages: cluster
                .clock()
                .stages()
                .iter()
                .map(StageSummary::from_record)
                .collect(),
            jobs: m.jobs_submitted.get(),
            tasks_launched: m.tasks_launched.get(),
            tasks_failed: m.tasks_failed.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            virtual_us: cluster.virtual_elapsed().us,
        }
    }

    /// The most skewed stage, if any stage ran.
    pub fn most_skewed_stage(&self) -> Option<&StageSummary> {
        self.stages
            .iter()
            .max_by(|a, b| a.skew().partial_cmp(&b.skew()).expect("finite skew"))
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {}  tasks: {} ({} failed)  cache: {} hits / {} misses  \
             virtual time: {:.2}s",
            self.jobs,
            self.tasks_launched,
            self.tasks_failed,
            self.cache_hits,
            self.cache_misses,
            self.virtual_us as f64 / 1e6
        )?;
        writeln!(
            f,
            "{:<44} {:>6} {:>12} {:>10} {:>12} {:>7}",
            "stage", "tasks", "total(ms)", "skew", "shuffle(B)", "retries"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<44} {:>6} {:>12} {:>10.1} {:>12} {:>7}",
                if s.name.len() > 44 {
                    &s.name[..44]
                } else {
                    &s.name
                },
                s.tasks,
                s.total_us / 1000,
                s.skew(),
                s.shuffle_bytes,
                s.retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, PairRdd};

    #[test]
    fn report_captures_stages_and_counters() {
        let c = Cluster::local(2);
        let rdd = c.parallelize((0..100u32).collect::<Vec<_>>(), 4);
        let _ = rdd
            .map(|x| (x % 3, x))
            .reduce_by_key(|a, b| a + b, 2)
            .collect()
            .unwrap();
        let report = ClusterReport::capture(&c);
        assert!(report.jobs >= 2, "shuffle write + collect");
        assert!(report.stages.len() >= 2);
        assert!(report.tasks_launched > 0);
        assert_eq!(report.tasks_failed, 0);
        let text = report.to_string();
        assert!(text.contains("stage"));
        assert!(text.contains("shuffle"));
    }

    #[test]
    fn skew_is_one_for_even_stages() {
        let s = StageSummary {
            name: "even".into(),
            tasks: 4,
            total_us: 400,
            max_task_us: 100,
            shuffle_bytes: 0,
            retries: 0,
        };
        assert!((s.skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_skewed_stage_finds_the_outlier() {
        let c = Cluster::local(2);
        // One partition carries all the charged ops.
        c.run_job::<u8, _>("skewed", 4, |i, ctx| {
            if i == 0 {
                ctx.charge_ops(1_000_000);
            }
            Ok(vec![])
        })
        .unwrap();
        let report = ClusterReport::capture(&c);
        let worst = report.most_skewed_stage().expect("a stage ran");
        assert_eq!(worst.name, "skewed");
        assert!(worst.skew() > 2.0, "skew {:.2}", worst.skew());
    }

    #[test]
    fn empty_cluster_report_displays() {
        let c = Cluster::local(1);
        let report = ClusterReport::capture(&c);
        assert!(report.stages.is_empty());
        assert!(report.most_skewed_stage().is_none());
        let _ = report.to_string();
    }
}
