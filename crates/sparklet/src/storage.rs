//! Block manager: in-memory cache for computed RDD partitions.
//!
//! Mirrors Spark's storage layer at the granularity the paper relies on:
//! `cache()` pins partitions in executor memory; when an executor's pool is
//! exhausted its least-recently-used blocks are evicted and later accesses
//! recompute them from lineage (the engine's [`crate::rdd`] layer does the
//! recomputation; the block manager only stores/evicts).
//!
//! Blocks are owned by the executor whose task computed them. Storage
//! pressure is per executor (`memory_per_executor * storage_fraction` each),
//! and killing an executor ([`BlockManager::evict_executor`]) drops exactly
//! its blocks — the failure-domain semantics real Spark gets from having one
//! block manager per executor process. Lookups stay global: the engine is
//! one process, so a surviving replica anywhere is a hit.

use crate::journal::{EventKind, RunJournal};
use crate::metrics::ClusterMetrics;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a cached partition: `(rdd id, partition index)`.
pub type BlockId = (u64, usize);

struct Block {
    data: Arc<dyn Any + Send + Sync>,
    size: usize,
    /// Monotone access stamp for LRU.
    last_used: u64,
    /// Executor whose task computed (and therefore hosts) the block.
    owner: usize,
}

struct Store {
    blocks: HashMap<BlockId, Block>,
    /// Bytes cached per executor, indexed by executor id.
    used: Vec<usize>,
    tick: u64,
}

/// Memory-bounded cache of computed partitions with per-executor pools.
pub struct BlockManager {
    store: Mutex<Store>,
    executor_capacity: usize,
    num_executors: usize,
    metrics: ClusterMetrics,
    journal: RunJournal,
}

impl BlockManager {
    /// Fraction of executor memory available to storage (Spark's
    /// `spark.storage.memoryFraction` era default was 0.6).
    pub const STORAGE_FRACTION: f64 = 0.6;

    /// Create a block manager with `executor_capacity` bytes of storage
    /// memory on each of `num_executors` executors.
    pub fn new(executor_capacity: usize, num_executors: usize, metrics: ClusterMetrics) -> Self {
        let n = num_executors.max(1);
        BlockManager {
            store: Mutex::new(Store {
                blocks: HashMap::new(),
                used: vec![0; n],
                tick: 0,
            }),
            executor_capacity,
            num_executors: n,
            metrics,
            journal: RunJournal::new(),
        }
    }

    /// Share a cluster's run journal so hits/misses/evictions are journaled
    /// alongside scheduler events (builder, used by [`crate::Cluster::new`]).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = journal;
        self
    }

    /// Total storage capacity in bytes, across all executors.
    pub fn capacity(&self) -> usize {
        self.executor_capacity * self.num_executors
    }

    /// Storage capacity of a single executor in bytes.
    pub fn executor_capacity(&self) -> usize {
        self.executor_capacity
    }

    /// Bytes currently cached across all executors.
    pub fn used(&self) -> usize {
        self.store.lock().used.iter().sum()
    }

    /// Bytes currently cached on one executor.
    pub fn used_by(&self, executor: usize) -> usize {
        self.store.lock().used.get(executor).copied().unwrap_or(0)
    }

    /// Number of blocks currently cached.
    pub fn block_count(&self) -> usize {
        self.store.lock().blocks.len()
    }

    /// Look up a cached partition. Hits bump the LRU stamp and the
    /// `cache_hits` metric; misses bump `cache_misses`.
    pub fn get<T: Send + Sync + 'static>(&self, id: BlockId) -> Option<Arc<Vec<T>>> {
        let mut s = self.store.lock();
        s.tick += 1;
        let tick = s.tick;
        match s.blocks.get_mut(&id) {
            Some(block) => {
                block.last_used = tick;
                let data = block.data.clone();
                drop(s);
                match data.downcast::<Vec<T>>() {
                    Ok(v) => {
                        self.metrics.cache_hits.inc();
                        self.journal.record(EventKind::CacheHit {
                            rdd: id.0,
                            partition: id.1,
                        });
                        Some(v)
                    }
                    Err(_) => {
                        // Type mismatch can only happen on RDD-id reuse bugs;
                        // treat as a miss rather than corrupting the caller.
                        self.metrics.cache_misses.inc();
                        self.journal.record(EventKind::CacheMiss {
                            rdd: id.0,
                            partition: id.1,
                        });
                        None
                    }
                }
            }
            None => {
                drop(s);
                self.metrics.cache_misses.inc();
                self.journal.record(EventKind::CacheMiss {
                    rdd: id.0,
                    partition: id.1,
                });
                None
            }
        }
    }

    /// Insert a partition computed on `executor`, evicting that executor's
    /// LRU blocks as needed. Blocks larger than one executor's pool are not
    /// cached at all (callers simply recompute them), matching Spark's
    /// "skip caching oversized partition" behaviour.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        id: BlockId,
        data: Arc<Vec<T>>,
        size: usize,
        executor: usize,
    ) {
        if size > self.executor_capacity {
            return;
        }
        let owner = executor % self.num_executors;
        let mut s = self.store.lock();
        if let Some(old) = s.blocks.remove(&id) {
            s.used[old.owner] -= old.size;
        }
        while s.used[owner] + size > self.executor_capacity {
            // Evict the owner's least recently used block.
            let victim = s
                .blocks
                .iter()
                .filter(|(_, b)| b.owner == owner)
                .min_by_key(|(_, b)| b.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(b) = s.blocks.remove(&k) {
                        s.used[owner] -= b.size;
                        self.metrics.cache_evictions.inc();
                        self.journal.record(EventKind::CacheEvicted {
                            rdd: k.0,
                            partition: k.1,
                            bytes: b.size,
                        });
                    }
                }
                None => break,
            }
        }
        s.tick += 1;
        let tick = s.tick;
        s.used[owner] += size;
        s.blocks.insert(
            id,
            Block {
                data,
                size,
                last_used: tick,
                owner,
            },
        );
    }

    /// Remove every cached partition of an RDD (`unpersist`).
    pub fn evict_rdd(&self, rdd_id: u64) {
        let mut s = self.store.lock();
        let keys: Vec<BlockId> = s
            .blocks
            .keys()
            .filter(|(r, _)| *r == rdd_id)
            .copied()
            .collect();
        for k in keys {
            if let Some(b) = s.blocks.remove(&k) {
                s.used[b.owner] -= b.size;
            }
        }
    }

    /// Drop every block owned by `executor` — the storage half of an
    /// executor kill. Returns `(blocks_removed, bytes_released)`. These are
    /// failure losses, not pressure evictions, so `cache_evictions` is not
    /// bumped; the scheduler journals one `ExecutorLost` event instead.
    pub fn evict_executor(&self, executor: usize) -> (usize, usize) {
        let mut s = self.store.lock();
        let keys: Vec<BlockId> = s
            .blocks
            .iter()
            .filter(|(_, b)| b.owner == executor)
            .map(|(k, _)| *k)
            .collect();
        let mut bytes = 0;
        for k in &keys {
            if let Some(b) = s.blocks.remove(k) {
                s.used[b.owner] -= b.size;
                bytes += b.size;
            }
        }
        (keys.len(), bytes)
    }

    /// Clear the whole cache.
    pub fn clear(&self) {
        let mut s = self.store.lock();
        s.blocks.clear();
        s.used.iter_mut().for_each(|u| *u = 0);
    }
}

/// Estimate the resident size of a `Vec<T>` partition.
///
/// Deliberately shallow (`len * size_of::<T>()`): the engine's memory model
/// needs relative sizes that scale with record counts, not byte-exact
/// accounting. Documented in `DESIGN.md`.
pub fn estimate_vec_size<T>(v: &[T]) -> usize {
    v.len() * std::mem::size_of::<T>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(cap: usize) -> BlockManager {
        BlockManager::new(cap, 1, ClusterMetrics::new())
    }

    #[test]
    fn put_get_roundtrip() {
        let m = bm(1024);
        m.put((1, 0), Arc::new(vec![1u32, 2, 3]), 12, 0);
        let got: Arc<Vec<u32>> = m.get((1, 0)).unwrap();
        assert_eq!(*got, vec![1, 2, 3]);
        assert_eq!(m.used(), 12);
    }

    #[test]
    fn miss_returns_none_and_counts() {
        let metrics = ClusterMetrics::new();
        let m = BlockManager::new(64, 1, metrics.clone());
        assert!(m.get::<u32>((9, 9)).is_none());
        assert_eq!(metrics.cache_misses.get(), 1);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![0u8; 40]), 40, 0);
        m.put((1, 1), Arc::new(vec![0u8; 40]), 40, 0);
        // Touch block 0 so block 1 becomes LRU.
        let _ = m.get::<u8>((1, 0));
        m.put((1, 2), Arc::new(vec![0u8; 40]), 40, 0);
        assert!(m.get::<u8>((1, 0)).is_some(), "recently used survives");
        assert!(m.get::<u8>((1, 1)).is_none(), "LRU victim evicted");
        assert!(m.get::<u8>((1, 2)).is_some());
    }

    #[test]
    fn pressure_is_per_executor() {
        // Two executors, 100 B each: filling executor 0 must not evict
        // executor 1's blocks.
        let m = BlockManager::new(100, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![0u8; 80]), 80, 0);
        m.put((2, 0), Arc::new(vec![0u8; 80]), 80, 1);
        m.put((3, 0), Arc::new(vec![0u8; 80]), 80, 0); // evicts (1,0) only
        assert!(m.get::<u8>((1, 0)).is_none(), "executor 0's LRU evicted");
        assert!(m.get::<u8>((2, 0)).is_some(), "executor 1 untouched");
        assert!(m.get::<u8>((3, 0)).is_some());
        assert_eq!(m.used_by(0), 80);
        assert_eq!(m.used_by(1), 80);
        assert_eq!(m.capacity(), 200);
        assert_eq!(m.executor_capacity(), 100);
    }

    #[test]
    fn evict_executor_drops_only_its_blocks() {
        let m = BlockManager::new(1000, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![0u8; 10]), 10, 0);
        m.put((1, 1), Arc::new(vec![0u8; 20]), 20, 1);
        m.put((2, 0), Arc::new(vec![0u8; 30]), 30, 0);
        let (blocks, bytes) = m.evict_executor(0);
        assert_eq!(blocks, 2);
        assert_eq!(bytes, 40);
        assert!(m.get::<u8>((1, 0)).is_none());
        assert!(m.get::<u8>((2, 0)).is_none());
        assert!(m.get::<u8>((1, 1)).is_some(), "survivor's block remains");
        assert_eq!(m.used(), 20);
        assert_eq!(m.evict_executor(0), (0, 0), "idempotent");
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let m = bm(10);
        m.put((1, 0), Arc::new(vec![0u8; 100]), 100, 0);
        assert_eq!(m.block_count(), 0);
    }

    #[test]
    fn reinsert_replaces_and_fixes_accounting() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u8]), 30, 0);
        m.put((1, 0), Arc::new(vec![2u8]), 50, 0);
        assert_eq!(m.used(), 50);
        let got: Arc<Vec<u8>> = m.get((1, 0)).unwrap();
        assert_eq!(*got, vec![2u8]);
    }

    #[test]
    fn reinsert_across_executors_moves_ownership() {
        let m = BlockManager::new(100, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![1u8]), 30, 0);
        m.put((1, 0), Arc::new(vec![2u8]), 40, 1);
        assert_eq!(m.used_by(0), 0);
        assert_eq!(m.used_by(1), 40);
    }

    #[test]
    fn evict_rdd_removes_all_its_partitions() {
        let m = bm(1000);
        m.put((1, 0), Arc::new(vec![1u8]), 10, 0);
        m.put((1, 1), Arc::new(vec![1u8]), 10, 0);
        m.put((2, 0), Arc::new(vec![1u8]), 10, 0);
        m.evict_rdd(1);
        assert!(m.get::<u8>((1, 0)).is_none());
        assert!(m.get::<u8>((1, 1)).is_none());
        assert!(m.get::<u8>((2, 0)).is_some());
        assert_eq!(m.used(), 10);
    }

    #[test]
    fn type_mismatch_is_a_miss_not_a_panic() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u32]), 4, 0);
        assert!(m.get::<String>((1, 0)).is_none());
    }

    #[test]
    fn out_of_range_executor_is_clamped() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u8]), 10, 7); // 7 % 1 == 0
        assert!(m.get::<u8>((1, 0)).is_some());
        assert_eq!(m.used_by(0), 10);
    }

    #[test]
    fn estimate_scales_with_len() {
        assert_eq!(estimate_vec_size(&[0u64; 8]), 64);
        assert_eq!(estimate_vec_size::<u64>(&[]), 0);
    }
}
