//! Block manager: in-memory cache for computed RDD partitions.
//!
//! Mirrors Spark's storage layer at the granularity the paper relies on:
//! `cache()` pins partitions in executor memory; when an executor's pool is
//! exhausted its least-recently-used blocks are evicted and later accesses
//! recompute them from lineage (the engine's [`crate::rdd`] layer does the
//! recomputation; the block manager only stores/evicts).
//!
//! Blocks are owned by the executor whose task computed them. Storage
//! pressure is per executor (`memory_per_executor * storage_fraction` each),
//! and killing an executor ([`BlockManager::evict_executor`]) drops exactly
//! its blocks — the failure-domain semantics real Spark gets from having one
//! block manager per executor process. Lookups stay global: the engine is
//! one process, so a surviving replica anywhere is a hit.
//!
//! With a [`SpillManager`] attached (see [`BlockManager::with_spill`], wired
//! by [`crate::Cluster::new`]), pressure evictions and oversized puts go to
//! the owner's spill file instead of being dropped — provided a spill codec
//! is registered for the element type — and later `get`s read them back from
//! disk. Lineage recompute remains the fallback of last resort: it only
//! happens when no codec exists or the spill file died with its executor.

use crate::journal::{EventKind, RunJournal};
use crate::metrics::ClusterMetrics;
use crate::spill::{SpillManager, SpillSlot};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a cached partition: `(rdd id, partition index)`.
pub type BlockId = (u64, usize);

struct Block {
    data: Arc<dyn Any + Send + Sync>,
    size: usize,
    /// Monotone access stamp for LRU.
    last_used: u64,
    /// Executor whose task computed (and therefore hosts) the block.
    owner: usize,
}

/// A block that lives on the disk tier instead of in memory.
struct SpilledBlock {
    slot: SpillSlot,
    owner: usize,
}

struct Store {
    blocks: HashMap<BlockId, Block>,
    /// Blocks serialized to the owner's spill file (disk tier).
    spilled: HashMap<BlockId, SpilledBlock>,
    /// Bytes cached per executor, indexed by executor id.
    used: Vec<usize>,
    tick: u64,
}

/// Memory-bounded cache of computed partitions with per-executor pools.
pub struct BlockManager {
    store: Mutex<Store>,
    executor_capacity: usize,
    num_executors: usize,
    metrics: ClusterMetrics,
    journal: RunJournal,
    /// Disk tier; `None` keeps the historical drop-on-pressure semantics
    /// (standalone block managers in unit tests).
    spill: Option<SpillManager>,
}

impl BlockManager {
    /// Fraction of executor memory available to storage (Spark's
    /// `spark.storage.memoryFraction` era default was 0.6).
    pub const STORAGE_FRACTION: f64 = 0.6;

    /// Create a block manager with `executor_capacity` bytes of storage
    /// memory on each of `num_executors` executors.
    pub fn new(executor_capacity: usize, num_executors: usize, metrics: ClusterMetrics) -> Self {
        let n = num_executors.max(1);
        BlockManager {
            store: Mutex::new(Store {
                blocks: HashMap::new(),
                spilled: HashMap::new(),
                used: vec![0; n],
                tick: 0,
            }),
            executor_capacity,
            num_executors: n,
            metrics,
            journal: RunJournal::new(),
            spill: None,
        }
    }

    /// Share a cluster's run journal so hits/misses/evictions are journaled
    /// alongside scheduler events (builder, used by [`crate::Cluster::new`]).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = journal;
        self
    }

    /// Attach the disk tier (builder, used by [`crate::Cluster::new`]).
    /// Pressure evictions and oversized puts then spill instead of dropping
    /// when the spill manager is enabled and has a codec for the block type.
    pub fn with_spill(mut self, spill: SpillManager) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Total storage capacity in bytes, across all executors.
    pub fn capacity(&self) -> usize {
        self.executor_capacity * self.num_executors
    }

    /// Storage capacity of a single executor in bytes.
    pub fn executor_capacity(&self) -> usize {
        self.executor_capacity
    }

    /// Bytes currently cached across all executors.
    pub fn used(&self) -> usize {
        self.store.lock().used.iter().sum()
    }

    /// Bytes currently cached on one executor.
    pub fn used_by(&self, executor: usize) -> usize {
        self.store.lock().used.get(executor).copied().unwrap_or(0)
    }

    /// Number of blocks currently cached.
    pub fn block_count(&self) -> usize {
        self.store.lock().blocks.len()
    }

    /// Look up a cached partition. Hits bump the LRU stamp and the
    /// `cache_hits` metric; misses bump `cache_misses`.
    pub fn get<T: Send + Sync + 'static>(&self, id: BlockId) -> Option<Arc<Vec<T>>> {
        let mut s = self.store.lock();
        s.tick += 1;
        let tick = s.tick;
        match s.blocks.get_mut(&id) {
            Some(block) => {
                block.last_used = tick;
                let data = block.data.clone();
                drop(s);
                match data.downcast::<Vec<T>>() {
                    Ok(v) => {
                        self.metrics.cache_hits.inc();
                        self.journal.record(EventKind::CacheHit {
                            rdd: id.0,
                            partition: id.1,
                        });
                        Some(v)
                    }
                    Err(_) => {
                        // Type mismatch can only happen on RDD-id reuse bugs;
                        // treat as a miss rather than corrupting the caller.
                        self.metrics.cache_misses.inc();
                        self.journal.record(EventKind::CacheMiss {
                            rdd: id.0,
                            partition: id.1,
                        });
                        None
                    }
                }
            }
            None => {
                // Disk tier: a spilled copy is still a hit — read it back
                // rather than recomputing from lineage.
                if let Some(found) = self.get_spilled::<T>(&mut s, id) {
                    drop(s);
                    self.metrics.cache_hits.inc();
                    self.journal.record(EventKind::CacheHit {
                        rdd: id.0,
                        partition: id.1,
                    });
                    return Some(found);
                }
                drop(s);
                self.metrics.cache_misses.inc();
                self.journal.record(EventKind::CacheMiss {
                    rdd: id.0,
                    partition: id.1,
                });
                None
            }
        }
    }

    /// Read a spilled block back from the disk tier. Drops the entry (and
    /// reports a miss) when its spill file died with the owning executor or
    /// the payload type does not match.
    fn get_spilled<T: Send + Sync + 'static>(
        &self,
        s: &mut Store,
        id: BlockId,
    ) -> Option<Arc<Vec<T>>> {
        let spill = self.spill.as_ref()?;
        let entry = s.spilled.get(&id)?;
        let owner = entry.owner;
        let bytes = entry.slot.len();
        match spill
            .read(&entry.slot)
            .and_then(|any| any.downcast::<Vec<T>>().ok())
        {
            Some(v) => {
                self.journal.record(EventKind::SpillRead {
                    executor: owner,
                    bytes,
                });
                Some(v)
            }
            None => {
                s.spilled.remove(&id);
                None
            }
        }
    }

    /// Insert a partition computed on `executor`, evicting that executor's
    /// LRU blocks as needed. Blocks larger than one executor's pool never
    /// enter the memory pool: with a disk tier attached they spill straight
    /// to the owner's spill file; otherwise the put is skipped (journaled as
    /// `CacheSkipped` — callers recompute on every access).
    pub fn put<T: Send + Sync + 'static>(
        &self,
        id: BlockId,
        data: Arc<Vec<T>>,
        size: usize,
        executor: usize,
    ) {
        let owner = executor % self.num_executors;
        if size > self.executor_capacity {
            // Spark's "skip caching oversized partition" path. Historically
            // this returned silently, making reports claim a clean cache
            // while the partition recomputed on every access.
            let mut s = self.store.lock();
            if self.spill_block(&mut s, id, &*data, owner) {
                return;
            }
            drop(s);
            self.metrics.cache_skipped.inc();
            self.journal.record(EventKind::CacheSkipped {
                rdd: id.0,
                partition: id.1,
                bytes: size,
            });
            return;
        }
        let mut s = self.store.lock();
        if let Some(old) = s.blocks.remove(&id) {
            s.used[old.owner] -= old.size;
            self.sub_resident(old.owner, old.size);
            if old.owner != owner {
                // Cross-owner re-put (e.g. a speculative clone recomputed
                // the partition elsewhere): the old owner's copy is gone —
                // journal the implicit eviction instead of adjusting
                // accounting silently.
                self.metrics.cache_evictions.inc();
                self.journal.record(EventKind::CacheEvicted {
                    rdd: id.0,
                    partition: id.1,
                    bytes: old.size,
                });
            }
        }
        // A fresh in-memory copy supersedes any stale spilled one.
        s.spilled.remove(&id);
        while s.used[owner] + size > self.executor_capacity {
            // Evict the owner's least recently used block — to the disk
            // tier when possible, dropping it only as the last resort.
            let victim = s
                .blocks
                .iter()
                .filter(|(_, b)| b.owner == owner)
                .min_by_key(|(_, b)| b.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(b) = s.blocks.remove(&k) {
                        s.used[owner] -= b.size;
                        self.sub_resident(owner, b.size);
                        if !self.spill_block(&mut s, k, &*b.data, owner) {
                            self.metrics.cache_evictions.inc();
                            self.journal.record(EventKind::CacheEvicted {
                                rdd: k.0,
                                partition: k.1,
                                bytes: b.size,
                            });
                        }
                    }
                }
                None => break,
            }
        }
        s.tick += 1;
        let tick = s.tick;
        s.used[owner] += size;
        self.add_resident(owner, size);
        s.blocks.insert(
            id,
            Block {
                data,
                size,
                last_used: tick,
                owner,
            },
        );
    }

    /// Try to move a block to the disk tier. Returns whether it spilled.
    fn spill_block(
        &self,
        s: &mut Store,
        id: BlockId,
        data: &(dyn Any + Send + Sync),
        owner: usize,
    ) -> bool {
        let Some(spill) = self.spill.as_ref() else {
            return false;
        };
        if !spill.enabled() {
            return false;
        }
        let Some(slot) = spill.write(owner, data) else {
            return false;
        };
        self.metrics.blocks_spilled.inc();
        self.journal.record(EventKind::SpillWrite {
            executor: owner,
            bytes: slot.len(),
        });
        s.spilled.insert(id, SpilledBlock { slot, owner });
        true
    }

    fn add_resident(&self, owner: usize, bytes: usize) {
        if let Some(spill) = self.spill.as_ref() {
            spill.add_resident(owner, bytes as u64);
        }
    }

    fn sub_resident(&self, owner: usize, bytes: usize) {
        if let Some(spill) = self.spill.as_ref() {
            spill.sub_resident(owner, bytes as u64);
        }
    }

    /// Remove every cached partition of an RDD (`unpersist`), from both the
    /// memory pool and the disk tier.
    pub fn evict_rdd(&self, rdd_id: u64) {
        let mut s = self.store.lock();
        let keys: Vec<BlockId> = s
            .blocks
            .keys()
            .filter(|(r, _)| *r == rdd_id)
            .copied()
            .collect();
        for k in keys {
            if let Some(b) = s.blocks.remove(&k) {
                s.used[b.owner] -= b.size;
                self.sub_resident(b.owner, b.size);
            }
        }
        s.spilled.retain(|(r, _), _| *r != rdd_id);
    }

    /// Drop every block owned by `executor` — the storage half of an
    /// executor kill. Returns `(blocks_removed, bytes_released)`. These are
    /// failure losses, not pressure evictions, so `cache_evictions` is not
    /// bumped; the scheduler journals one `ExecutorLost` event instead.
    pub fn evict_executor(&self, executor: usize) -> (usize, usize) {
        let mut s = self.store.lock();
        let keys: Vec<BlockId> = s
            .blocks
            .iter()
            .filter(|(_, b)| b.owner == executor)
            .map(|(k, _)| *k)
            .collect();
        let mut bytes = 0;
        for k in &keys {
            if let Some(b) = s.blocks.remove(k) {
                s.used[b.owner] -= b.size;
                self.sub_resident(b.owner, b.size);
                bytes += b.size;
            }
        }
        // Spilled copies die with the executor's spill file (the cluster
        // invalidates it on kill); forget the now-dangling entries so later
        // gets go straight to lineage recompute.
        s.spilled.retain(|_, e| e.owner != executor);
        (keys.len(), bytes)
    }

    /// Clear the whole cache, memory and disk tier alike.
    pub fn clear(&self) {
        let mut s = self.store.lock();
        for b in s.blocks.values() {
            self.sub_resident(b.owner, b.size);
        }
        s.blocks.clear();
        s.spilled.clear();
        s.used.iter_mut().for_each(|u| *u = 0);
    }
}

/// Estimate the resident size of a `Vec<T>` partition.
///
/// Deliberately shallow (`len * size_of::<T>()`): the engine's memory model
/// needs relative sizes that scale with record counts, not byte-exact
/// accounting. Documented in `DESIGN.md`.
pub fn estimate_vec_size<T>(v: &[T]) -> usize {
    v.len() * std::mem::size_of::<T>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(cap: usize) -> BlockManager {
        BlockManager::new(cap, 1, ClusterMetrics::new())
    }

    #[test]
    fn put_get_roundtrip() {
        let m = bm(1024);
        m.put((1, 0), Arc::new(vec![1u32, 2, 3]), 12, 0);
        let got: Arc<Vec<u32>> = m.get((1, 0)).unwrap();
        assert_eq!(*got, vec![1, 2, 3]);
        assert_eq!(m.used(), 12);
    }

    #[test]
    fn miss_returns_none_and_counts() {
        let metrics = ClusterMetrics::new();
        let m = BlockManager::new(64, 1, metrics.clone());
        assert!(m.get::<u32>((9, 9)).is_none());
        assert_eq!(metrics.cache_misses.get(), 1);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![0u8; 40]), 40, 0);
        m.put((1, 1), Arc::new(vec![0u8; 40]), 40, 0);
        // Touch block 0 so block 1 becomes LRU.
        let _ = m.get::<u8>((1, 0));
        m.put((1, 2), Arc::new(vec![0u8; 40]), 40, 0);
        assert!(m.get::<u8>((1, 0)).is_some(), "recently used survives");
        assert!(m.get::<u8>((1, 1)).is_none(), "LRU victim evicted");
        assert!(m.get::<u8>((1, 2)).is_some());
    }

    #[test]
    fn pressure_is_per_executor() {
        // Two executors, 100 B each: filling executor 0 must not evict
        // executor 1's blocks.
        let m = BlockManager::new(100, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![0u8; 80]), 80, 0);
        m.put((2, 0), Arc::new(vec![0u8; 80]), 80, 1);
        m.put((3, 0), Arc::new(vec![0u8; 80]), 80, 0); // evicts (1,0) only
        assert!(m.get::<u8>((1, 0)).is_none(), "executor 0's LRU evicted");
        assert!(m.get::<u8>((2, 0)).is_some(), "executor 1 untouched");
        assert!(m.get::<u8>((3, 0)).is_some());
        assert_eq!(m.used_by(0), 80);
        assert_eq!(m.used_by(1), 80);
        assert_eq!(m.capacity(), 200);
        assert_eq!(m.executor_capacity(), 100);
    }

    #[test]
    fn evict_executor_drops_only_its_blocks() {
        let m = BlockManager::new(1000, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![0u8; 10]), 10, 0);
        m.put((1, 1), Arc::new(vec![0u8; 20]), 20, 1);
        m.put((2, 0), Arc::new(vec![0u8; 30]), 30, 0);
        let (blocks, bytes) = m.evict_executor(0);
        assert_eq!(blocks, 2);
        assert_eq!(bytes, 40);
        assert!(m.get::<u8>((1, 0)).is_none());
        assert!(m.get::<u8>((2, 0)).is_none());
        assert!(m.get::<u8>((1, 1)).is_some(), "survivor's block remains");
        assert_eq!(m.used(), 20);
        assert_eq!(m.evict_executor(0), (0, 0), "idempotent");
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let m = bm(10);
        m.put((1, 0), Arc::new(vec![0u8; 100]), 100, 0);
        assert_eq!(m.block_count(), 0);
    }

    #[test]
    fn reinsert_replaces_and_fixes_accounting() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u8]), 30, 0);
        m.put((1, 0), Arc::new(vec![2u8]), 50, 0);
        assert_eq!(m.used(), 50);
        let got: Arc<Vec<u8>> = m.get((1, 0)).unwrap();
        assert_eq!(*got, vec![2u8]);
    }

    #[test]
    fn reinsert_across_executors_moves_ownership() {
        let m = BlockManager::new(100, 2, ClusterMetrics::new());
        m.put((1, 0), Arc::new(vec![1u8]), 30, 0);
        m.put((1, 0), Arc::new(vec![2u8]), 40, 1);
        assert_eq!(m.used_by(0), 0);
        assert_eq!(m.used_by(1), 40);
    }

    #[test]
    fn evict_rdd_removes_all_its_partitions() {
        let m = bm(1000);
        m.put((1, 0), Arc::new(vec![1u8]), 10, 0);
        m.put((1, 1), Arc::new(vec![1u8]), 10, 0);
        m.put((2, 0), Arc::new(vec![1u8]), 10, 0);
        m.evict_rdd(1);
        assert!(m.get::<u8>((1, 0)).is_none());
        assert!(m.get::<u8>((1, 1)).is_none());
        assert!(m.get::<u8>((2, 0)).is_some());
        assert_eq!(m.used(), 10);
    }

    #[test]
    fn type_mismatch_is_a_miss_not_a_panic() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u32]), 4, 0);
        assert!(m.get::<String>((1, 0)).is_none());
    }

    #[test]
    fn out_of_range_executor_is_clamped() {
        let m = bm(100);
        m.put((1, 0), Arc::new(vec![1u8]), 10, 7); // 7 % 1 == 0
        assert!(m.get::<u8>((1, 0)).is_some());
        assert_eq!(m.used_by(0), 10);
    }

    #[test]
    fn estimate_scales_with_len() {
        assert_eq!(estimate_vec_size(&[0u64; 8]), 64);
        assert_eq!(estimate_vec_size::<u64>(&[]), 0);
    }

    fn bm_spill(cap: usize) -> (BlockManager, ClusterMetrics, SpillManager, RunJournal) {
        let metrics = ClusterMetrics::new();
        let journal = RunJournal::new();
        let spill = SpillManager::new(1, true, usize::MAX, metrics.clone());
        let m = BlockManager::new(cap, 1, metrics.clone())
            .with_journal(journal.clone())
            .with_spill(spill.clone());
        (m, metrics, spill, journal)
    }

    fn tags(journal: &RunJournal) -> Vec<&'static str> {
        journal.events().iter().map(|e| e.kind.tag()).collect()
    }

    #[test]
    fn oversized_put_spills_straight_to_disk_and_reads_back() {
        let (m, metrics, _spill, journal) = bm_spill(10);
        m.put((1, 0), Arc::new(vec![7u8; 100]), 100, 0);
        assert_eq!(m.block_count(), 0, "never enters the memory pool");
        assert_eq!(metrics.blocks_spilled.get(), 1);
        assert_eq!(metrics.cache_skipped.get(), 0, "spilled, not skipped");
        let got: Arc<Vec<u8>> = m.get((1, 0)).expect("disk tier serves the block");
        assert_eq!(*got, vec![7u8; 100]);
        assert_eq!(metrics.cache_hits.get(), 1, "a spilled read is a hit");
        assert!(metrics.spill_bytes_read.get() > 0);
        assert!(tags(&journal).contains(&"spill_write"));
        assert!(tags(&journal).contains(&"spill_read"));
    }

    #[test]
    fn oversized_put_without_codec_is_journaled_as_skipped() {
        // Regression: this used to return silently — no event, no counter —
        // so reports claimed a clean cache while the block recomputed on
        // every access.
        let (m, metrics, _spill, journal) = bm_spill(10);
        m.put((1, 0), Arc::new(vec!["x".to_string(); 50]), 100, 0);
        assert_eq!(m.block_count(), 0);
        assert_eq!(metrics.cache_skipped.get(), 1);
        assert_eq!(metrics.blocks_spilled.get(), 0);
        assert!(tags(&journal).contains(&"cache_skipped"));
        assert!(m.get::<String>((1, 0)).is_none(), "recomputes from lineage");
    }

    #[test]
    fn pressure_eviction_spills_instead_of_dropping() {
        let (m, metrics, _spill, journal) = bm_spill(100);
        m.put((1, 0), Arc::new(vec![1u8; 60]), 60, 0);
        m.put((1, 1), Arc::new(vec![2u8; 60]), 60, 0); // evicts (1,0) to disk
        assert_eq!(metrics.blocks_spilled.get(), 1);
        assert_eq!(
            metrics.cache_evictions.get(),
            0,
            "a spill is not a drop: the block is still servable"
        );
        let got: Arc<Vec<u8>> = m.get((1, 0)).expect("victim survives on disk");
        assert_eq!(*got, vec![1u8; 60]);
        assert!(tags(&journal).contains(&"spill_write"));
        assert!(m.get::<u8>((1, 1)).is_some(), "resident block untouched");
    }

    #[test]
    fn cross_owner_reput_journals_the_implicit_eviction() {
        // Regression: re-putting an existing BlockId under a different owner
        // adjusted `used[]` but never journaled that the old owner's copy
        // was dropped.
        let metrics = ClusterMetrics::new();
        let journal = RunJournal::new();
        let m = BlockManager::new(100, 2, metrics.clone()).with_journal(journal.clone());
        m.put((1, 0), Arc::new(vec![1u8]), 30, 0);
        m.put((1, 0), Arc::new(vec![2u8]), 40, 1);
        assert_eq!(metrics.cache_evictions.get(), 1);
        let evicted: Vec<usize> = journal
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::CacheEvicted { bytes, .. } => Some(bytes),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![30], "old owner's copy journaled at its size");
        // Same-owner replacement is bookkeeping, not an eviction.
        m.put((1, 0), Arc::new(vec![3u8]), 50, 1);
        assert_eq!(metrics.cache_evictions.get(), 1);
    }

    #[test]
    fn executor_kill_forgets_spilled_copies() {
        let (m, _metrics, spill, _journal) = bm_spill(10);
        m.put((1, 0), Arc::new(vec![9u8; 64]), 64, 0); // oversized → disk
        assert!(m.get::<u8>((1, 0)).is_some());
        // The kill path invalidates the spill file and evicts the executor.
        spill.invalidate_executor(0);
        m.evict_executor(0);
        assert!(
            m.get::<u8>((1, 0)).is_none(),
            "dangling slot must miss, not serve stale bytes"
        );
    }

    #[test]
    fn evict_rdd_and_clear_purge_the_disk_tier() {
        let (m, _metrics, _spill, _journal) = bm_spill(10);
        m.put((1, 0), Arc::new(vec![1u8; 64]), 64, 0);
        m.put((2, 0), Arc::new(vec![2u8; 64]), 64, 0);
        m.evict_rdd(1);
        assert!(m.get::<u8>((1, 0)).is_none(), "unpersist covers spilled");
        assert!(m.get::<u8>((2, 0)).is_some());
        m.clear();
        assert!(m.get::<u8>((2, 0)).is_none());
    }

    #[test]
    fn fresh_put_supersedes_the_spilled_copy() {
        let (m, _metrics, _spill, _journal) = bm_spill(100);
        m.put((1, 0), Arc::new(vec![1u8; 60]), 60, 0);
        m.put((1, 1), Arc::new(vec![2u8; 60]), 60, 0); // spills (1,0)
        m.put((1, 0), Arc::new(vec![3u8; 10]), 10, 0); // fresh resident copy
        let got: Arc<Vec<u8>> = m.get((1, 0)).unwrap();
        assert_eq!(*got, vec![3u8; 10], "memory copy wins over stale disk");
    }
}
