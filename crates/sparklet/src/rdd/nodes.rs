//! Concrete lineage-node implementations.

use super::node::RddNode;
use crate::cluster::{Cluster, RecoveryFn};
use crate::error::{Result, SparkletError};
use crate::journal::EventKind;
use crate::partitioner::Partitioner;
use crate::storage::estimate_vec_size;
use crate::task::TaskContext;
use crate::{Data, KeyData};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Source node: an in-memory collection split into even chunks.
pub struct ParallelCollectionNode<T: Data> {
    id: u64,
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T: Data> ParallelCollectionNode<T> {
    pub fn new(id: u64, data: Vec<T>, num_partitions: usize) -> Self {
        let n = num_partitions.max(1);
        let len = data.len();
        let mut partitions = Vec::with_capacity(n);
        let mut iter = data.into_iter();
        for i in 0..n {
            let start = i * len / n;
            let end = (i + 1) * len / n;
            partitions.push(Arc::new(
                iter.by_ref().take(end - start).collect::<Vec<T>>(),
            ));
        }
        ParallelCollectionNode { id, partitions }
    }
}

impl<T: Data> RddNode<T> for ParallelCollectionNode<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "parallelize".into()
    }
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
    fn prepare(&self, _cluster: &Cluster) -> Result<()> {
        Ok(())
    }
    fn compute(&self, split: usize, _ctx: &TaskContext) -> Result<Vec<T>> {
        Ok((*self.partitions[split]).clone())
    }
}

/// Narrow transformation over whole partitions; `map`, `filter`, `flat_map`
/// and `map_partitions` all lower to this node.
pub struct MapPartitionsNode<T: Data, U: Data> {
    id: u64,
    name: String,
    parent: Arc<dyn RddNode<T>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&TaskContext, usize, Vec<T>) -> Result<Vec<U>> + Send + Sync>,
}

impl<T: Data, U: Data> MapPartitionsNode<T, U> {
    #[allow(clippy::type_complexity)]
    pub fn new(
        id: u64,
        name: &str,
        parent: Arc<dyn RddNode<T>>,
        f: Arc<dyn Fn(&TaskContext, usize, Vec<T>) -> Result<Vec<U>> + Send + Sync>,
    ) -> Self {
        MapPartitionsNode {
            id,
            name: name.to_string(),
            parent,
            f,
        }
    }
}

impl<T: Data, U: Data> RddNode<U> for MapPartitionsNode<T, U> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<U>> {
        let input = self.parent.compute(split, ctx)?;
        (self.f)(ctx, split, input)
    }
}

/// Concatenation of several parents' partition spaces.
pub struct UnionNode<T: Data> {
    id: u64,
    parents: Vec<Arc<dyn RddNode<T>>>,
}

impl<T: Data> UnionNode<T> {
    pub fn new(id: u64, parents: Vec<Arc<dyn RddNode<T>>>) -> Self {
        UnionNode { id, parents }
    }
}

impl<T: Data> RddNode<T> for UnionNode<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "union".into()
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        for p in &self.parents {
            p.prepare(cluster)?;
        }
        Ok(())
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<T>> {
        let mut offset = split;
        for p in &self.parents {
            let n = p.num_partitions();
            if offset < n {
                return p.compute(offset, ctx);
            }
            offset -= n;
        }
        Err(SparkletError::User(format!(
            "union partition {split} out of range"
        )))
    }
}

/// All pairs of partitions from two parents (`left × right`).
pub struct CartesianNode<A: Data, B: Data> {
    id: u64,
    left: Arc<dyn RddNode<A>>,
    right: Arc<dyn RddNode<B>>,
}

impl<A: Data, B: Data> CartesianNode<A, B> {
    pub fn new(id: u64, left: Arc<dyn RddNode<A>>, right: Arc<dyn RddNode<B>>) -> Self {
        CartesianNode { id, left, right }
    }
}

impl<A: Data, B: Data> RddNode<(A, B)> for CartesianNode<A, B> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "cartesian".into()
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions() * self.right.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.left.prepare(cluster)?;
        self.right.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<(A, B)>> {
        let nr = self.right.num_partitions();
        let li = split / nr;
        let ri = split % nr;
        let left = self.left.compute(li, ctx)?;
        let right = self.right.compute(ri, ctx)?;
        let mut out = Vec::with_capacity(left.len() * right.len());
        for a in &left {
            for b in &right {
                out.push((a.clone(), b.clone()));
            }
        }
        Ok(out)
    }
}

/// Bernoulli sample with a per-partition deterministic RNG.
pub struct SampleNode<T: Data> {
    id: u64,
    parent: Arc<dyn RddNode<T>>,
    fraction: f64,
    seed: u64,
}

impl<T: Data> SampleNode<T> {
    pub fn new(id: u64, parent: Arc<dyn RddNode<T>>, fraction: f64, seed: u64) -> Self {
        SampleNode {
            id,
            parent,
            fraction: fraction.clamp(0.0, 1.0),
            seed,
        }
    }
}

impl<T: Data> RddNode<T> for SampleNode<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "sample".into()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<T>> {
        let input = self.parent.compute(split, ctx)?;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (split as u64).wrapping_mul(0x9E3779B97F4A7C15));
        Ok(input
            .into_iter()
            .filter(|_| rng.gen::<f64>() < self.fraction)
            .collect())
    }
}

/// Reduce the partition count without a shuffle by grouping parent splits.
pub struct CoalesceNode<T: Data> {
    id: u64,
    parent: Arc<dyn RddNode<T>>,
    target: usize,
}

impl<T: Data> CoalesceNode<T> {
    pub fn new(id: u64, parent: Arc<dyn RddNode<T>>, target: usize) -> Self {
        CoalesceNode {
            id,
            parent,
            target: target.max(1),
        }
    }
}

impl<T: Data> RddNode<T> for CoalesceNode<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "coalesce".into()
    }
    fn num_partitions(&self) -> usize {
        self.target.min(self.parent.num_partitions().max(1))
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<T>> {
        let np = self.parent.num_partitions();
        let n = self.num_partitions();
        let start = split * np / n;
        let end = (split + 1) * np / n;
        let mut out = Vec::new();
        for p in start..end {
            out.extend(self.parent.compute(p, ctx)?);
        }
        Ok(out)
    }
}

/// Caching node: partitions are stored in the block manager on first
/// computation; evicted blocks are transparently recomputed from lineage.
pub struct CachedNode<T: Data> {
    id: u64,
    cluster: Cluster,
    parent: Arc<dyn RddNode<T>>,
}

impl<T: Data> CachedNode<T> {
    pub fn new(id: u64, cluster: Cluster, parent: Arc<dyn RddNode<T>>) -> Self {
        CachedNode {
            id,
            cluster,
            parent,
        }
    }
}

impl<T: Data> RddNode<T> for CachedNode<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        format!("cached[{}]", self.parent.name())
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<T>> {
        if let Some(block) = self.cluster.blocks().get::<T>((self.id, split)) {
            return Ok((*block).clone());
        }
        let data = self.parent.compute(split, ctx)?;
        let size = estimate_vec_size(&data);
        self.cluster.blocks().put(
            (self.id, split),
            Arc::new(data.clone()),
            size,
            ctx.executor(),
        );
        Ok(data)
    }
}

/// Run (or re-run) the map side of shuffle `sid` for the given subset of
/// parent partitions: each map task hash-partitions its parent partition
/// into `partitioner.num_partitions()` buckets and registers them, keyed by
/// map-task index and tagged with the hosting executor. Called with every
/// partition from [`ShuffledNode::prepare`] and with just the missing ones
/// from the lineage-recovery handler.
fn run_map_stage<K: KeyData, V: Data>(
    cluster: &Cluster,
    parent: &Arc<dyn RddNode<(K, V)>>,
    partitioner: &Arc<dyn Partitioner<K>>,
    sid: u64,
    maps: &[usize],
    recovering: bool,
) -> Result<()> {
    let nr = partitioner.num_partitions();
    let total = parent.num_partitions();
    let suffix = if recovering { "-recover" } else { "-write" };
    let stage = format!("shuffle#{sid}{suffix}[{}]", parent.name());
    let maps: Arc<Vec<usize>> = Arc::new(maps.to_vec());
    let parent = parent.clone();
    let partitioner = partitioner.clone();
    let chunk_target = cluster.config().batch.target_chunk_records;
    let cl = cluster.clone();
    cluster.run_job::<u8, _>(&stage, maps.len(), move |i, ctx| {
        let m = maps[i];
        let data = parent.compute(m, ctx)?;
        let records = data.len();
        let (buckets, chunks) = bucket_by_partition(data, partitioner.as_ref(), chunk_target);
        ctx.add_chunks(chunks);
        let bytes = (records * std::mem::size_of::<(K, V)>().max(1)) as u64;
        ctx.add_shuffle_bytes(bytes);
        cl.journal().record(EventKind::BatchExecuted {
            stage: ctx.stage().to_string(),
            op: "shuffle-bucket".into(),
            chunks,
            records: records as u64,
            max_chunk: chunk_target.min(records) as u64,
        });
        cl.shuffles()
            .write_map_output(sid, m, total, nr, ctx.executor(), buckets, bytes)?;
        Ok(Vec::new())
    })?;
    Ok(())
}

/// Bucket a map task's pairs by reduce partition, chunked and with
/// exact-capacity buckets: an assignment pass calls
/// [`Partitioner::partition_batch`] once per `chunk_target` rows (one
/// virtual dispatch per chunk instead of one per record), a counting pass
/// sizes every bucket exactly, and the fill pass moves each pair once into
/// storage that never reallocates or over-allocates. Returns the buckets
/// and the number of chunks dispatched. Bucket contents are bit-identical
/// to the per-record path for every chunk size: assignment order is row
/// order either way.
pub(crate) fn bucket_by_partition<K: KeyData, V: Data>(
    data: Vec<(K, V)>,
    partitioner: &dyn Partitioner<K>,
    chunk_target: usize,
) -> (Vec<Vec<(K, V)>>, u64) {
    let nr = partitioner.num_partitions();
    let chunk_target = chunk_target.max(1);
    let mut assign = Vec::with_capacity(data.len());
    let mut chunks = 0u64;
    for rows in data.chunks(chunk_target) {
        partitioner.partition_batch(&mut rows.iter().map(|kv| &kv.0), &mut assign);
        chunks += 1;
    }
    let mut counts = vec![0usize; nr];
    for &r in &assign {
        counts[r] += 1;
    }
    let mut buckets: Vec<Vec<(K, V)>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (kv, &r) in data.into_iter().zip(&assign) {
        buckets[r].push(kv);
    }
    (buckets, chunks)
}

/// Wide node: repartitions `(K, V)` pairs by key through the shuffle service.
///
/// The node owns the strong reference to its shuffle's lineage-recovery
/// handler (see `cluster::RecoveryFn`); the cluster registry only holds it
/// weakly,
/// so dropping the node makes the shuffle unrecoverable without creating a
/// node ↔ cluster reference cycle.
pub struct ShuffledNode<K: KeyData, V: Data> {
    id: u64,
    shuffle_id: u64,
    cluster: Cluster,
    parent: Arc<dyn RddNode<(K, V)>>,
    partitioner: Arc<dyn Partitioner<K>>,
    recovery: Arc<RecoveryFn>,
    done: Mutex<bool>,
}

impl<K: KeyData, V: Data> ShuffledNode<K, V> {
    pub fn new(
        id: u64,
        shuffle_id: u64,
        cluster: Cluster,
        parent: Arc<dyn RddNode<(K, V)>>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Self {
        let recovery: Arc<RecoveryFn> = {
            let parent = parent.clone();
            let partitioner = partitioner.clone();
            Arc::new(move |cluster: &Cluster, maps: &[usize]| {
                run_map_stage(cluster, &parent, &partitioner, shuffle_id, maps, true)
            })
        };
        ShuffledNode {
            id,
            shuffle_id,
            cluster,
            parent,
            partitioner,
            recovery,
            done: Mutex::new(false),
        }
    }
}

impl<K: KeyData, V: Data> RddNode<(K, V)> for ShuffledNode<K, V> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        format!("shuffle#{}", self.shuffle_id)
    }
    fn num_partitions(&self) -> usize {
        self.partitioner.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)?;
        let mut done = self.done.lock();
        // The node-local flag alone is not authoritative: the cluster's
        // shuffle store may have been cleared (reset_run_state between
        // experiment runs) or partially lost to an executor kill, in which
        // case the shuffle must be re-materialised.
        if *done && cluster.shuffles().is_complete(self.shuffle_id) {
            return Ok(());
        }
        *done = false;
        // A previous failed materialisation may have left partial buckets.
        cluster.shuffles().discard(self.shuffle_id);
        cluster.register_shuffle_recovery(
            self.shuffle_id,
            self.parent.num_partitions(),
            &self.recovery,
        );
        let all: Vec<usize> = (0..self.parent.num_partitions()).collect();
        run_map_stage(
            cluster,
            &self.parent,
            &self.partitioner,
            self.shuffle_id,
            &all,
            false,
        )?;
        if !cluster.shuffles().mark_complete(self.shuffle_id) {
            // An executor died between writing its outputs and this point,
            // taking some of them with it: rebuild the gaps right away.
            cluster.recover_shuffle(self.shuffle_id);
        }
        *done = true;
        Ok(())
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<(K, V)>> {
        let data: Vec<(K, V)> = self
            .cluster
            .shuffles()
            .read_bucket(self.shuffle_id, split)?;
        ctx.add_shuffle_bytes((data.len() * std::mem::size_of::<(K, V)>().max(1)) as u64);
        Ok(data)
    }
}

/// Zip two equally-partitioned parents partition-wise through a combiner
/// function (the engine's cogroup building block).
pub struct ZipPartitionsNode<A: Data, B: Data, C: Data> {
    id: u64,
    left: Arc<dyn RddNode<A>>,
    right: Arc<dyn RddNode<B>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&TaskContext, Vec<A>, Vec<B>) -> Result<Vec<C>> + Send + Sync>,
}

impl<A: Data, B: Data, C: Data> ZipPartitionsNode<A, B, C> {
    #[allow(clippy::type_complexity)]
    pub fn new(
        id: u64,
        left: Arc<dyn RddNode<A>>,
        right: Arc<dyn RddNode<B>>,
        f: Arc<dyn Fn(&TaskContext, Vec<A>, Vec<B>) -> Result<Vec<C>> + Send + Sync>,
    ) -> Result<Self> {
        if left.num_partitions() != right.num_partitions() {
            return Err(SparkletError::PartitionMismatch {
                left: left.num_partitions(),
                right: right.num_partitions(),
            });
        }
        Ok(ZipPartitionsNode { id, left, right, f })
    }
}

impl<A: Data, B: Data, C: Data> RddNode<C> for ZipPartitionsNode<A, B, C> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        "zip_partitions".into()
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.left.prepare(cluster)?;
        self.right.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<C>> {
        let a = self.left.compute(split, ctx)?;
        let b = self.right.compute(split, ctx)?;
        (self.f)(ctx, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::HashPartitioner;

    #[test]
    fn bucketing_allocates_buckets_at_exact_capacity() {
        // Regression: the shuffle write path must size each bucket exactly
        // once instead of growing it per record (doubling leaves up to 2×
        // slack per bucket).
        let data: Vec<(u64, u32)> = (0..1000u64).map(|k| (k, (k * 3) as u32)).collect();
        let p = HashPartitioner::<u64>::new(8);
        let (buckets, chunks) = bucket_by_partition(data.clone(), &p, 128);
        assert_eq!(chunks, 8, "1000 rows at 128/chunk");
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 1000);
        for (i, b) in buckets.iter().enumerate() {
            assert_eq!(
                b.capacity(),
                b.len(),
                "bucket {i} over-allocated: capacity {} for {} rows",
                b.capacity(),
                b.len()
            );
        }
        // Bit-identical to the per-record path, in row order.
        let mut expect: Vec<Vec<(u64, u32)>> = (0..8).map(|_| Vec::new()).collect();
        for kv in data {
            expect[p.partition(&kv.0)].push(kv);
        }
        assert_eq!(buckets, expect);
    }

    #[test]
    fn bucketing_handles_empty_and_single_chunk_inputs() {
        let p = HashPartitioner::<u64>::new(4);
        let (buckets, chunks) = bucket_by_partition(Vec::<(u64, u8)>::new(), &p, 16);
        assert_eq!(chunks, 0);
        assert!(buckets.iter().all(Vec::is_empty));
        let (buckets, chunks) = bucket_by_partition(vec![(1u64, 1u8), (2, 2)], &p, usize::MAX);
        assert_eq!(chunks, 1);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 2);
    }
}
