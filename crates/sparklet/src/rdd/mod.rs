//! The public [`Rdd`] handle: transformations and actions.

pub mod batch;
pub mod node;
pub mod nodes;

use crate::cluster::Cluster;
use crate::error::{Result, SparkletError};
use crate::task::TaskContext;
use crate::Data;
use batch::BatchMapNode;
pub use batch::Chunk;
use node::RddNode;
use nodes::*;
use std::sync::Arc;

/// A partitioned, immutable, lineage-backed dataset — sparklet's analogue of
/// Spark's `RDD`.
///
/// Transformations are lazy: they only grow the lineage graph. Actions
/// ([`Rdd::collect`], [`Rdd::count`], [`Rdd::reduce`], [`Rdd::aggregate`],
/// …) materialise shuffle dependencies stage by stage and run one task per
/// partition on the cluster scheduler.
pub struct Rdd<T: Data> {
    pub(crate) cluster: Cluster,
    pub(crate) node: Arc<dyn RddNode<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            cluster: self.cluster.clone(),
            node: self.node.clone(),
        }
    }
}

impl<T: Data> Rdd<T> {
    pub(crate) fn from_collection(cluster: Cluster, data: Vec<T>, num_partitions: usize) -> Self {
        let id = cluster.new_rdd_id();
        Rdd {
            node: Arc::new(ParallelCollectionNode::new(id, data, num_partitions)),
            cluster,
        }
    }

    pub(crate) fn from_node(cluster: Cluster, node: Arc<dyn RddNode<T>>) -> Self {
        Rdd { cluster, node }
    }

    /// The cluster this dataset is bound to.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.node.num_partitions()
    }

    // ------------------------------------------------------------------
    // Narrow transformations
    // ------------------------------------------------------------------

    /// Element-wise transformation (a thin adapter over the batch path: the
    /// partition moves through the DAG in [`Chunk`]s, see [`Rdd::map_batches`]).
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        self.batch_op("map", move |_, _, chunk: Chunk<T>| {
            Ok(Chunk::new(chunk.into_items().into_iter().map(&f).collect()))
        })
    }

    /// Keep only elements satisfying `pred` (chunked under the hood, see
    /// [`Rdd::filter_batches`]).
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        self.batch_op("filter", move |_, _, chunk: Chunk<T>| {
            Ok(Chunk::new(
                chunk.into_items().into_iter().filter(|t| pred(t)).collect(),
            ))
        })
    }

    /// One-to-many transformation (chunked under the hood, see
    /// [`Rdd::flat_map_batches`]).
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        self.batch_op("flat_map", move |_, _, chunk: Chunk<T>| {
            Ok(Chunk::new(
                chunk.into_items().into_iter().flat_map(&f).collect(),
            ))
        })
    }

    // ------------------------------------------------------------------
    // Batch-native operators: whole chunks in, whole chunks out
    // ------------------------------------------------------------------

    /// Chunk-wise 1:1 transformation: `f` sees a whole [`Chunk`] and must
    /// return exactly one output row per input row (enforced — a length
    /// mismatch fails the task). Use this to amortise per-row dispatch when
    /// the body can vectorise over the slab; use
    /// [`Rdd::flat_map_batches`] for free-form arity.
    pub fn map_batches<U: Data>(
        &self,
        f: impl Fn(&TaskContext, &Chunk<T>) -> Result<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.batch_op("map_batches", move |ctx, _, chunk: Chunk<T>| {
            let out = f(ctx, &chunk)?;
            if out.len() != chunk.len() {
                return Err(SparkletError::User(format!(
                    "map_batches must be 1:1: chunk of {} rows produced {}",
                    chunk.len(),
                    out.len()
                )));
            }
            Ok(Chunk::new(out))
        })
    }

    /// Chunk-wise filter: `f` returns one keep/drop mask entry per row of
    /// the chunk (enforced — a mask length mismatch fails the task).
    pub fn filter_batches(
        &self,
        f: impl Fn(&TaskContext, &Chunk<T>) -> Result<Vec<bool>> + Send + Sync + 'static,
    ) -> Rdd<T> {
        self.batch_op("filter_batches", move |ctx, _, chunk: Chunk<T>| {
            let mask = f(ctx, &chunk)?;
            if mask.len() != chunk.len() {
                return Err(SparkletError::User(format!(
                    "filter_batches mask must match the chunk: {} rows, {} mask entries",
                    chunk.len(),
                    mask.len()
                )));
            }
            let mut mask = mask.into_iter();
            Ok(Chunk::new(
                chunk
                    .into_items()
                    .into_iter()
                    .filter(|_| mask.next().unwrap_or(false))
                    .collect(),
            ))
        })
    }

    /// Chunk-wise free-form transformation: `f` consumes a whole [`Chunk`]
    /// and may return any number of rows. Outputs are concatenated in chunk
    /// order, so results match a row-at-a-time `flat_map` for any chunk
    /// size.
    pub fn flat_map_batches<U: Data>(
        &self,
        f: impl Fn(&TaskContext, Chunk<T>) -> Result<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.batch_op("flat_map_batches", move |ctx, _, chunk: Chunk<T>| {
            Ok(Chunk::new(f(ctx, chunk)?))
        })
    }

    fn batch_op<U: Data>(
        &self,
        name: &str,
        f: impl Fn(&TaskContext, usize, Chunk<T>) -> Result<Chunk<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let id = self.cluster.new_rdd_id();
        let target = self.cluster.config().batch.target_chunk_records;
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(BatchMapNode::new(
                id,
                name,
                self.cluster.clone(),
                self.node.clone(),
                target,
                Arc::new(f),
            )),
        )
    }

    /// Whole-partition transformation.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.map_partitions_named("map_partitions", move |_, _, part| Ok(f(part)))
    }

    /// Whole-partition transformation with access to the task context and
    /// the partition index — the hook for cost charging, user counters and
    /// memory declarations.
    pub fn map_partitions_with_ctx<U: Data>(
        &self,
        f: impl Fn(&TaskContext, usize, Vec<T>) -> Result<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.map_partitions_named("map_partitions_with_ctx", f)
    }

    fn map_partitions_named<U: Data>(
        &self,
        name: &str,
        f: impl Fn(&TaskContext, usize, Vec<T>) -> Result<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(MapPartitionsNode::new(
                id,
                name,
                self.node.clone(),
                Arc::new(f),
            )),
        )
    }

    /// Pair every element with a key computed from it.
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Rdd<(K, T)> {
        self.map(move |t| (f(&t), t))
    }

    /// Concatenate with another dataset (partition spaces appended).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(UnionNode::new(
                id,
                vec![self.node.clone(), other.node.clone()],
            )),
        )
    }

    /// All pairs with elements of `other` (`|self| × |other|` partitions).
    pub fn cartesian<U: Data>(&self, other: &Rdd<U>) -> Rdd<(T, U)> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(CartesianNode::new(
                id,
                self.node.clone(),
                other.node.clone(),
            )),
        )
    }

    /// Deterministic Bernoulli sample of roughly `fraction` of elements.
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(SampleNode::new(id, self.node.clone(), fraction, seed)),
        )
    }

    /// Reduce the partition count without a shuffle.
    pub fn coalesce(&self, num_partitions: usize) -> Rdd<T> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(CoalesceNode::new(id, self.node.clone(), num_partitions)),
        )
    }

    /// Pin computed partitions in the block manager (LRU-evicted under
    /// memory pressure and recomputed from lineage on access).
    pub fn cache(&self) -> Rdd<T> {
        let id = self.cluster.new_rdd_id();
        Rdd::from_node(
            self.cluster.clone(),
            Arc::new(CachedNode::new(id, self.cluster.clone(), self.node.clone())),
        )
    }

    /// Zip partition-wise with an equally partitioned dataset through a
    /// combiner. Errors with [`SparkletError::PartitionMismatch`] otherwise.
    pub fn zip_partitions<U: Data, C: Data>(
        &self,
        other: &Rdd<U>,
        f: impl Fn(&TaskContext, Vec<T>, Vec<U>) -> Result<Vec<C>> + Send + Sync + 'static,
    ) -> Result<Rdd<C>> {
        let id = self.cluster.new_rdd_id();
        let node = ZipPartitionsNode::new(id, self.node.clone(), other.node.clone(), Arc::new(f))?;
        Ok(Rdd::from_node(self.cluster.clone(), Arc::new(node)))
    }

    /// Globally sort by a derived `Ord` key using a sampled range
    /// partitioner (Spark's `sortBy`): sample keys, choose splitters, range-
    /// shuffle, sort within partitions.
    pub fn sort_by<K: crate::KeyData + Ord>(
        &self,
        f: impl Fn(&T) -> K + Send + Sync + 'static,
        num_partitions: usize,
    ) -> Result<Rdd<T>> {
        use crate::pair::PairRdd;
        use crate::partitioner::RangePartitioner;
        let f = std::sync::Arc::new(f);
        let n = num_partitions.max(1);
        // Sample ~20 keys per target partition for splitter selection.
        let f_sample = f.clone();
        let mut sampled: Vec<K> = self
            .sample(1.0f64.min(0.1 + 0.001 * n as f64), 0xBEEF)
            .map(move |t| f_sample(&t))
            .take(n * 20)?;
        sampled.sort();
        let mut splitters = Vec::with_capacity(n.saturating_sub(1));
        for i in 1..n {
            if sampled.is_empty() {
                break;
            }
            let idx = i * sampled.len() / n;
            splitters.push(sampled[idx.min(sampled.len() - 1)].clone());
        }
        splitters.dedup();
        let f_key = f.clone();
        let keyed = self.map(move |t| (f_key(&t), t));
        let ranged = keyed.partition_by(std::sync::Arc::new(RangePartitioner::new(splitters)));
        Ok(ranged.map_partitions(|mut part: Vec<(K, T)>| {
            part.sort_by(|a, b| a.0.cmp(&b.0));
            part.into_iter().map(|(_, t)| t).collect()
        }))
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Materialise every partition and concatenate.
    pub fn collect(&self) -> Result<Vec<T>> {
        self.node.prepare(&self.cluster)?;
        let node = self.node.clone();
        let stage = format!("collect[{}]", node.name());
        let parts = self
            .cluster
            .run_job(&stage, node.num_partitions(), move |i, ctx| {
                node.compute(i, ctx)
            })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Number of elements.
    pub fn count(&self) -> Result<usize> {
        self.aggregate(0usize, |acc, _| acc + 1, |a, b| a + b)
    }

    /// Fold each partition with `seq` starting from `zero`, then combine the
    /// per-partition results with `comb` on the driver.
    pub fn aggregate<A: Data>(
        &self,
        zero: A,
        seq: impl Fn(A, T) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A + Send + Sync + 'static,
    ) -> Result<A> {
        self.node.prepare(&self.cluster)?;
        let node = self.node.clone();
        let stage = format!("aggregate[{}]", node.name());
        let z = zero.clone();
        let parts = self
            .cluster
            .run_job(&stage, node.num_partitions(), move |i, ctx| {
                let data = node.compute(i, ctx)?;
                let acc = data.into_iter().fold(z.clone(), &seq);
                Ok(vec![acc])
            })?;
        Ok(parts.into_iter().flatten().fold(zero, comb))
    }

    /// Reduce all elements with `f`; `None` for an empty dataset.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Result<Option<T>> {
        let f = Arc::new(f);
        let f2 = f.clone();
        self.aggregate(
            None,
            move |acc: Option<T>, t| match acc {
                None => Some(t),
                Some(a) => Some(f(a, t)),
            },
            move |a, b| match (a, b) {
                (None, b) => b,
                (a, None) => a,
                (Some(a), Some(b)) => Some(f2(a, b)),
            },
        )
    }

    /// First `n` elements in partition order.
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// First element, or [`SparkletError::EmptyCollection`].
    pub fn first(&self) -> Result<T> {
        self.take(1)?
            .into_iter()
            .next()
            .ok_or(SparkletError::EmptyCollection)
    }

    /// Minimum element under a derived `Ord` key; `None` when empty.
    pub fn min_by_key<K: Ord>(
        &self,
        f: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Result<Option<T>> {
        self.reduce(move |a, b| if f(&a) <= f(&b) { a } else { b })
    }

    /// Maximum element under a derived `Ord` key; `None` when empty.
    pub fn max_by_key<K: Ord>(
        &self,
        f: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Result<Option<T>> {
        self.reduce(move |a, b| if f(&a) >= f(&b) { a } else { b })
    }

    /// Pair every element with its global index in partition order
    /// (Spark's `zipWithIndex`). Costs one counting pass.
    pub fn zip_with_index(&self) -> Result<Rdd<(T, u64)>> {
        self.node.prepare(&self.cluster)?;
        let node = self.node.clone();
        let counts = self
            .cluster
            .run_job("zip_with_index-count", node.num_partitions(), {
                let node = node.clone();
                move |i, ctx| Ok(vec![node.compute(i, ctx)?.len() as u64])
            })?;
        let mut offsets = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for c in counts {
            offsets.push(acc);
            acc += c[0];
        }
        Ok(self.map_partitions_with_ctx(move |_, split, part: Vec<T>| {
            let base = offsets[split];
            Ok(part
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, base + i as u64))
                .collect())
        }))
    }
}

impl<T: crate::KeyData> Rdd<T> {
    /// Remove duplicate elements (one shuffle).
    pub fn distinct(&self, num_partitions: usize) -> Rdd<T> {
        use crate::pair::PairRdd;
        self.map(|t| (t, ()))
            .reduce_by_key(|a, _| a, num_partitions)
            .keys()
    }

    /// Action: occurrence count per distinct value.
    pub fn count_by_value(&self) -> Result<std::collections::HashMap<T, u64>> {
        use crate::pair::PairRdd;
        self.map(|t| (t, ())).count_by_key()
    }
}

#[cfg(test)]
mod tests {
    use super::Rdd;
    use crate::Cluster;

    #[test]
    fn parallelize_preserves_order_and_count() {
        let c = Cluster::local(3);
        let data: Vec<u32> = (0..100).collect();
        let rdd = c.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn parallelize_more_partitions_than_elements() {
        let c = Cluster::local(2);
        let rdd = c.parallelize(vec![1u8, 2], 10);
        assert_eq!(rdd.count().unwrap(), 2);
    }

    #[test]
    fn map_filter_flat_map_pipeline() {
        let c = Cluster::local(2);
        let out = c
            .parallelize((1..=10u32).collect(), 3)
            .map(|x| x * 10)
            .filter(|x| x % 20 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect()
            .unwrap();
        assert_eq!(out, vec![20, 21, 40, 41, 60, 61, 80, 81, 100, 101]);
    }

    #[test]
    fn aggregate_sums() {
        let c = Cluster::local(4);
        let sum = c
            .parallelize((1..=100u64).collect(), 8)
            .aggregate(0u64, |a, x| a + x, |a, b| a + b)
            .unwrap();
        assert_eq!(sum, 5050);
    }

    #[test]
    fn reduce_empty_is_none() {
        let c = Cluster::local(2);
        let r = c
            .parallelize(Vec::<u32>::new(), 4)
            .reduce(|a, b| a + b)
            .unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn reduce_max() {
        let c = Cluster::local(2);
        let r = c
            .parallelize(vec![3u32, 9, 1, 7], 3)
            .reduce(|a, b| a.max(b))
            .unwrap();
        assert_eq!(r, Some(9));
    }

    #[test]
    fn union_concatenates() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3, 4], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cartesian_produces_all_pairs() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![1u8, 2], 2);
        let b = c.parallelize(vec![10u8, 20], 2);
        let mut pairs = a.cartesian(&b).collect().unwrap();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 10), (1, 20), (2, 10), (2, 20)]);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_proportional() {
        let c = Cluster::local(2);
        let rdd = c.parallelize((0..10_000u32).collect(), 4);
        let s1 = rdd.sample(0.1, 42).collect().unwrap();
        let s2 = rdd.sample(0.1, 42).collect().unwrap();
        assert_eq!(s1, s2);
        assert!(s1.len() > 700 && s1.len() < 1300, "got {}", s1.len());
        let s3 = rdd.sample(0.1, 43).collect().unwrap();
        assert_ne!(s1, s3, "different seeds should differ");
    }

    #[test]
    fn coalesce_reduces_partitions_preserving_data() {
        let c = Cluster::local(2);
        let rdd = c.parallelize((0..50u32).collect(), 10).coalesce(3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().unwrap(), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn cache_hits_on_second_action() {
        let c = Cluster::local(2);
        let rdd = c
            .parallelize((0..100u32).collect(), 4)
            .map(|x| x + 1)
            .cache();
        let _ = rdd.count().unwrap();
        let before = c.metrics().cache_hits.get();
        let _ = rdd.count().unwrap();
        assert!(
            c.metrics().cache_hits.get() >= before + 4,
            "all four partitions should hit on the second pass"
        );
    }

    #[test]
    fn zip_partitions_mismatch_errors() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![1u8], 2);
        let b = c.parallelize(vec![1u8], 3);
        assert!(a.zip_partitions(&b, |_, x, _| Ok(x)).is_err());
    }

    #[test]
    fn zip_partitions_combines() {
        let c = Cluster::local(2);
        let a = c.parallelize((0..10u32).collect(), 5);
        let b = c.parallelize((10..20u32).collect(), 5);
        let z = a
            .zip_partitions(&b, |_, xs, ys| {
                Ok(xs.into_iter().zip(ys).map(|(x, y)| x + y).collect())
            })
            .unwrap();
        let out = z.collect().unwrap();
        assert_eq!(out, vec![10, 12, 14, 16, 18, 20, 22, 24, 26, 28]);
    }

    #[test]
    fn take_and_first() {
        let c = Cluster::local(2);
        let rdd = c.parallelize(vec![5u8, 6, 7], 2);
        assert_eq!(rdd.take(2).unwrap(), vec![5, 6]);
        assert_eq!(rdd.first().unwrap(), 5);
        assert!(c.parallelize(Vec::<u8>::new(), 1).first().is_err());
    }

    #[test]
    fn key_by_pairs_elements() {
        let c = Cluster::local(2);
        let out = c
            .parallelize(vec!["a".to_string(), "bb".to_string()], 1)
            .key_by(|s| s.len())
            .collect()
            .unwrap();
        assert_eq!(out, vec![(1, "a".to_string()), (2, "bb".to_string())]);
    }

    #[test]
    fn sort_by_produces_global_order() {
        let c = Cluster::local(3);
        let data: Vec<u32> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let sorted = c
            .parallelize(data.clone(), 8)
            .sort_by(|x| *x, 4)
            .unwrap()
            .collect()
            .unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sort_by_handles_empty_and_tiny() {
        let c = Cluster::local(2);
        assert!(c
            .parallelize(Vec::<u32>::new(), 3)
            .sort_by(|x| *x, 4)
            .unwrap()
            .collect()
            .unwrap()
            .is_empty());
        assert_eq!(
            c.parallelize(vec![3u32], 1)
                .sort_by(|x| *x, 4)
                .unwrap()
                .collect()
                .unwrap(),
            vec![3]
        );
    }

    #[test]
    fn sort_by_derived_key_descending() {
        let c = Cluster::local(2);
        let out = c
            .parallelize(vec![1i64, 5, 3], 2)
            .sort_by(|x| -*x, 2)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out, vec![5, 3, 1]);
    }

    #[test]
    fn zip_with_index_is_global_and_ordered() {
        let c = Cluster::local(2);
        let out = c
            .parallelize(vec!["a", "b", "c", "d", "e"], 3)
            .zip_with_index()
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out, vec![("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = Cluster::local(2);
        let mut out = c
            .parallelize(vec![3u32, 1, 3, 2, 1, 1], 3)
            .distinct(2)
            .collect()
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn count_by_value_counts() {
        let c = Cluster::local(2);
        let counts = c
            .parallelize(vec!["x", "y", "x", "x"], 2)
            .count_by_value()
            .unwrap();
        assert_eq!(counts["x"], 3);
        assert_eq!(counts["y"], 1);
    }

    #[test]
    fn min_max_by_key() {
        let c = Cluster::local(2);
        let rdd = c.parallelize(vec![("a", 3), ("b", 9), ("c", 1)], 2);
        assert_eq!(rdd.min_by_key(|(_, v)| *v).unwrap(), Some(("c", 1)));
        assert_eq!(rdd.max_by_key(|(_, v)| *v).unwrap(), Some(("b", 9)));
        let empty: Rdd<(&str, i32)> = c.parallelize(vec![], 1);
        assert_eq!(empty.min_by_key(|(_, v)| *v).unwrap(), None);
    }

    #[test]
    fn map_partitions_with_ctx_charges_cost() {
        let c = Cluster::local(2);
        let out = c
            .parallelize((0..8u32).collect(), 2)
            .map_partitions_with_ctx(|ctx, split, part| {
                ctx.charge_ops(part.len() as u64);
                ctx.counter("parts_seen").inc();
                Ok(vec![split])
            })
            .collect()
            .unwrap();
        assert_eq!(out, vec![0, 1]);
        assert_eq!(c.metrics().counter("parts_seen").get(), 2);
    }
}
