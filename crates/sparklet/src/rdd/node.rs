//! The lineage-node trait behind every [`crate::Rdd`].

use crate::cluster::Cluster;
use crate::error::Result;
use crate::task::TaskContext;
use crate::Data;

/// A node in the lineage graph.
///
/// `compute` is pull-based: a task asks a node for one partition, and narrow
/// nodes recursively pull from their parents inside the same task (Spark's
/// stage pipelining). Wide nodes ([`super::nodes::ShuffledNode`]) instead
/// read from the shuffle service, which `prepare` must have materialised
/// beforehand.
///
/// `prepare` is invoked driver-side before any action and walks the lineage
/// recursively, running the map stages of all not-yet-materialised shuffle
/// dependencies in topological order. Keeping stage execution on the driver
/// is what makes the fixed-size worker pool deadlock-free.
pub trait RddNode<T: Data>: Send + Sync {
    /// Unique id within the cluster (used as the cache key).
    fn id(&self) -> u64;

    /// Human-readable operator name for stage labels.
    fn name(&self) -> String;

    /// Number of partitions this node produces.
    fn num_partitions(&self) -> usize;

    /// Materialise all shuffle dependencies below this node.
    fn prepare(&self, cluster: &Cluster) -> Result<()>;

    /// Compute one partition.
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<T>>;
}
