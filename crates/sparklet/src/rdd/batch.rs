//! Chunked operator-at-a-time execution — the batch path.
//!
//! Record-at-a-time dispatch pays one boxed-closure call per element; with
//! the narrow operators lowered to this module, a partition instead moves
//! through the DAG as a sequence of [`Chunk`] slabs of
//! [`crate::BatchConfig::target_chunk_records`] rows, paying one dispatch
//! ([`crate::CostModelConfig::chunk_dispatch_ns`]) per chunk and per-record
//! cost only for the work itself. Output is bit-identical for every chunk
//! size: chunks are cut and re-concatenated in row order, so `map`, `filter`
//! and `flat_map` remain thin adapters over [`BatchMapNode`] with unchanged
//! semantics.

use super::node::RddNode;
use crate::cluster::Cluster;
use crate::error::Result;
use crate::journal::EventKind;
use crate::task::TaskContext;
use crate::Data;
use std::sync::Arc;

/// A contiguous slab of rows flowing through a batch operator.
///
/// A `Chunk` is a plain `Vec<T>` with the slab semantics made explicit:
/// operators receive whole chunks, transform them, and hand back whole
/// chunks. Within a partition, chunks arrive in row order and their outputs
/// are concatenated in the same order.
#[derive(Debug, Clone)]
pub struct Chunk<T> {
    items: Vec<T>,
}

impl<T> Chunk<T> {
    /// Wrap a row vector as a chunk.
    pub fn new(items: Vec<T>) -> Self {
        Chunk { items }
    }

    /// Rows in the chunk.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the chunk empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the rows.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Take the rows out of the chunk.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Iterate over borrowed rows.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }
}

impl<T> From<Vec<T>> for Chunk<T> {
    fn from(items: Vec<T>) -> Self {
        Chunk::new(items)
    }
}

impl<T> IntoIterator for Chunk<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Cut a partition into chunks of at most `target` rows, moving each element
/// exactly once. A partition at or under the target passes through as a
/// single chunk without touching its elements (the `usize::MAX`
/// "unchunked" preset always takes this path); an empty partition is one
/// empty chunk, so every (task, operator) pair dispatches at least once.
pub(crate) fn split_chunks<T>(data: Vec<T>, target: usize) -> Vec<Vec<T>> {
    let target = target.max(1);
    if data.len() <= target {
        return vec![data];
    }
    let mut chunks = Vec::with_capacity(data.len().div_ceil(target));
    let mut iter = data.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(target).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Narrow batch transformation: the parent partition is cut into chunks and
/// each chunk is pushed through `f`; outputs are concatenated in chunk
/// order. All of `map` / `filter` / `flat_map` / `map_batches` /
/// `filter_batches` / `flat_map_batches` lower to this node.
///
/// Cost accounting: one [`crate::CostModelConfig::chunk_dispatch_ns`] per
/// chunk via [`TaskContext::add_chunks`]; journaling: one
/// [`EventKind::BatchExecuted`] per compute (per task), never per chunk.
pub struct BatchMapNode<T: Data, U: Data> {
    id: u64,
    name: String,
    cluster: Cluster,
    parent: Arc<dyn RddNode<T>>,
    target: usize,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&TaskContext, usize, Chunk<T>) -> Result<Chunk<U>> + Send + Sync>,
}

impl<T: Data, U: Data> BatchMapNode<T, U> {
    #[allow(clippy::type_complexity)]
    pub fn new(
        id: u64,
        name: &str,
        cluster: Cluster,
        parent: Arc<dyn RddNode<T>>,
        target: usize,
        f: Arc<dyn Fn(&TaskContext, usize, Chunk<T>) -> Result<Chunk<U>> + Send + Sync>,
    ) -> Self {
        BatchMapNode {
            id,
            name: name.to_string(),
            cluster,
            parent,
            target,
            f,
        }
    }
}

impl<T: Data, U: Data> RddNode<U> for BatchMapNode<T, U> {
    fn id(&self) -> u64 {
        self.id
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn prepare(&self, cluster: &Cluster) -> Result<()> {
        self.parent.prepare(cluster)
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Result<Vec<U>> {
        let input = self.parent.compute(split, ctx)?;
        let records = input.len() as u64;
        let chunks = split_chunks(input, self.target);
        ctx.add_chunks(chunks.len() as u64);
        let mut max_chunk = 0u64;
        let n_chunks = chunks.len() as u64;
        let mut out: Vec<U> = Vec::new();
        for chunk in chunks {
            max_chunk = max_chunk.max(chunk.len() as u64);
            let produced = (self.f)(ctx, split, Chunk::new(chunk))?;
            if out.is_empty() {
                // Single-chunk fast path: hand the produced slab through.
                out = produced.into_items();
            } else {
                out.extend(produced.into_items());
            }
        }
        self.cluster.journal().record(EventKind::BatchExecuted {
            stage: ctx.stage().to_string(),
            op: self.name.clone(),
            chunks: n_chunks,
            records,
            max_chunk,
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_chunks_cuts_in_row_order_without_remainder_loss() {
        let chunks = split_chunks((0..10u32).collect(), 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], vec![0, 1, 2]);
        assert_eq!(chunks[3], vec![9]);
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn split_chunks_small_partition_is_one_slab() {
        let chunks = split_chunks(vec![1u8, 2, 3], 1024);
        assert_eq!(chunks.len(), 1);
        let chunks = split_chunks(vec![1u8, 2, 3], usize::MAX);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn split_chunks_empty_partition_is_one_empty_chunk() {
        let chunks = split_chunks(Vec::<u8>::new(), 4);
        assert_eq!(chunks, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn split_chunks_target_one_is_row_at_a_time() {
        let chunks = split_chunks(vec![7u8, 8, 9], 1);
        assert_eq!(chunks, vec![vec![7], vec![8], vec![9]]);
    }

    #[test]
    fn chunk_wraps_and_unwraps() {
        let c = Chunk::from(vec![1u8, 2]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.items(), &[1, 2]);
        assert_eq!(c.iter().copied().sum::<u8>(), 3);
        assert_eq!(c.into_items(), vec![1, 2]);
    }
}
