//! Cluster handle, worker pool and the retrying task scheduler.

use crate::config::ClusterConfig;
use crate::error::{Result, SparkletError};
use crate::hash::stable_hash;
use crate::journal::{EventKind, JobReport, RunJournal};
use crate::metrics::ClusterMetrics;
use crate::rdd::Rdd;
use crate::shuffle::ShuffleService;
use crate::simtime::{StageRecord, VirtualClock, VirtualDuration};
use crate::storage::BlockManager;
use crate::task::TaskContext;
use crate::Data;
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

type Job = Box<dyn FnOnce(usize) + Send>;

/// Handle to an embedded sparklet cluster.
///
/// Cheap to clone; all clones share executors, metrics, storage and shuffle
/// state. Dropping the last clone shuts the worker threads down.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) inner: Arc<ClusterInner>,
}

pub(crate) struct ClusterInner {
    pub config: ClusterConfig,
    pub metrics: ClusterMetrics,
    pub shuffles: ShuffleService,
    pub blocks: BlockManager,
    pub clock: VirtualClock,
    pub journal: RunJournal,
    sender: Sender<Job>,
    next_rdd_id: AtomicU64,
    next_shuffle_id: AtomicU64,
}

impl Cluster {
    /// Start a cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        let metrics = ClusterMetrics::new();
        let journal = RunJournal::new();
        let storage_capacity = ((config.num_executors * config.memory_per_executor) as f64
            * BlockManager::STORAGE_FRACTION) as usize;
        let (sender, receiver) = unbounded::<Job>();
        for worker_id in 0..config.worker_threads() {
            let rx = receiver.clone();
            thread::Builder::new()
                .name(format!("sparklet-worker-{worker_id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job(worker_id);
                    }
                })
                .expect("failed to spawn worker thread");
        }
        Cluster {
            inner: Arc::new(ClusterInner {
                metrics: metrics.clone(),
                shuffles: ShuffleService::new(metrics.clone()).with_journal(journal.clone()),
                blocks: BlockManager::new(storage_capacity, metrics).with_journal(journal.clone()),
                clock: VirtualClock::new(),
                journal,
                sender,
                next_rdd_id: AtomicU64::new(0),
                next_shuffle_id: AtomicU64::new(0),
                config,
            }),
        }
    }

    /// Convenience: a local cluster with `parallelism` single-core executors
    /// and fault injection disabled.
    pub fn local(parallelism: usize) -> Self {
        Cluster::new(ClusterConfig::local(parallelism))
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.inner.metrics
    }

    /// The virtual clock accumulating stage costs.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Block manager backing `cache()`.
    pub fn blocks(&self) -> &BlockManager {
        &self.inner.blocks
    }

    /// Shuffle service (exposed for diagnostics and tests).
    pub fn shuffles(&self) -> &ShuffleService {
        &self.inner.shuffles
    }

    /// The run journal: every stage/task/cache/shuffle event of this
    /// cluster's lifetime (bounded; see [`RunJournal::MAX_EVENTS`]).
    pub fn journal(&self) -> &RunJournal {
        &self.inner.journal
    }

    /// Aggregate the journal, clock and metrics into an exportable
    /// [`JobReport`] (JSON via [`JobReport::to_json`], text via `Display`).
    pub fn job_report(&self) -> JobReport {
        JobReport::capture(self)
    }

    /// Virtual elapsed time of everything run so far on this cluster's own
    /// topology. See [`VirtualClock::makespan`] to query other topologies.
    pub fn virtual_elapsed(&self) -> VirtualDuration {
        self.inner.clock.makespan(
            self.inner.config.num_executors,
            self.inner.config.cores_per_executor,
            &self.inner.config.cost,
        )
    }

    /// Reset metrics, virtual clock, cache and shuffle state — used between
    /// experiment configurations so measurements do not bleed.
    pub fn reset_run_state(&self) {
        self.inner.metrics.reset();
        self.inner.clock.reset();
        self.inner.blocks.clear();
        self.inner.shuffles.clear();
        self.inner.journal.clear();
    }

    pub(crate) fn new_rdd_id(&self) -> u64 {
        self.inner.next_rdd_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_shuffle_id(&self) -> u64 {
        self.inner.next_shuffle_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Distribute `data` over `num_partitions` as an [`Rdd`].
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        Rdd::from_collection(self.clone(), data, num_partitions.max(1))
    }

    /// Run one stage: `f(partition_index, ctx)` for each of `num_tasks`
    /// partitions, with deterministic fault injection, per-task retries and
    /// virtual-cost recording. Returns the per-partition outputs in order.
    ///
    /// Must be called from driver code (never from inside a task) — shuffle
    /// dependencies are materialised driver-side before dependent stages run,
    /// which is what makes the fixed worker pool deadlock-free.
    pub fn run_job<T, F>(&self, stage: &str, num_tasks: usize, f: F) -> Result<Vec<Vec<T>>>
    where
        T: Data,
        F: Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync + 'static,
    {
        self.inner.metrics.jobs_submitted.inc();
        self.inner.journal.record(EventKind::StageStarted {
            stage: stage.to_string(),
            tasks: num_tasks,
        });
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<TaskOutcome<T>>();
        for task in 0..num_tasks {
            let f = f.clone();
            let tx = tx.clone();
            let inner = self.inner.clone();
            let stage_name = stage.to_string();
            let job: Job = Box::new(move |worker_id| {
                let outcome = run_task_with_retries(&inner, &stage_name, task, worker_id, &*f);
                let _ = tx.send(outcome);
            });
            self.inner
                .sender
                .send(job)
                .expect("worker pool unavailable");
        }
        drop(tx);

        let mut results: Vec<Option<Vec<T>>> = (0..num_tasks).map(|_| None).collect();
        let mut task_us = vec![0u64; num_tasks];
        let mut shuffle_bytes = 0u64;
        let mut retries = 0u64;
        let mut first_error: Option<SparkletError> = None;
        for _ in 0..num_tasks {
            let outcome = rx.recv().expect("task result channel closed early");
            task_us[outcome.task] = outcome.virtual_us;
            shuffle_bytes += outcome.shuffle_bytes;
            retries += outcome.retries;
            match outcome.result {
                Ok(data) => results[outcome.task] = Some(data),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let stage_work: u64 = task_us.iter().sum();
        self.inner.clock.record_stage(StageRecord {
            name: stage.to_string(),
            task_us,
            shuffle_bytes,
            retries,
        });
        // Advance the journal's virtual stamp so events of later stages are
        // timestamped after this stage's work, then close the stage out.
        self.inner.journal.advance(stage_work);
        self.inner.journal.record(EventKind::StageFinished {
            stage: stage.to_string(),
            virtual_us: stage_work,
            shuffle_bytes,
            retries,
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("missing task result"))
            .collect())
    }
}

struct TaskOutcome<T> {
    task: usize,
    result: Result<Vec<T>>,
    virtual_us: u64,
    shuffle_bytes: u64,
    retries: u64,
}

fn run_task_with_retries<T: Data>(
    inner: &ClusterInner,
    stage: &str,
    task: usize,
    worker_id: usize,
    f: &(dyn Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync),
) -> TaskOutcome<T> {
    let max_attempts = inner.config.max_task_attempts.max(1);
    let executor = worker_id % inner.config.num_executors.max(1);
    let mut total_us = 0u64;
    let mut total_shuffle = 0u64;
    let mut retries = 0u64;
    let mut last_err = SparkletError::User("task never ran".into());
    for attempt in 0..max_attempts {
        inner.metrics.tasks_launched.inc();
        inner.journal.record(EventKind::TaskLaunched {
            stage: stage.to_string(),
            task,
            attempt,
            executor,
        });
        let ctx = TaskContext::new(
            stage,
            task,
            attempt,
            executor,
            inner.metrics.clone(),
            inner.config.cost,
            inner.config.memory_per_executor,
        );
        let result = {
            let _guard = ctx.install();
            if fault_fires(&inner.config, stage, task, attempt) {
                Err(SparkletError::InjectedFault)
            } else {
                f(task, &ctx)
            }
        };
        match result {
            Ok(data) => {
                ctx.add_records_out(data.len() as u64);
                inner.metrics.tasks_succeeded.inc();
                inner.journal.record(EventKind::TaskSucceeded {
                    stage: stage.to_string(),
                    task,
                    attempt,
                    virtual_us: ctx.attempt_cost_us(),
                    records_out: data.len() as u64,
                });
                total_us += ctx.attempt_cost_us();
                total_shuffle += ctx_shuffle_bytes(&ctx);
                return TaskOutcome {
                    task,
                    result: Ok(data),
                    virtual_us: total_us,
                    shuffle_bytes: total_shuffle,
                    retries,
                };
            }
            Err(e) => {
                inner.metrics.tasks_failed.inc();
                inner.journal.record(EventKind::TaskFailed {
                    stage: stage.to_string(),
                    task,
                    attempt,
                    virtual_us: ctx.attempt_cost_us(),
                    reason: e.to_string(),
                    will_retry: attempt + 1 < max_attempts,
                });
                retries += 1;
                total_us += ctx.attempt_cost_us() + inner.config.cost.retry_penalty_us;
                total_shuffle += ctx_shuffle_bytes(&ctx);
                last_err = e;
            }
        }
    }
    TaskOutcome {
        task,
        result: Err(SparkletError::TaskFailed {
            stage: stage.to_string(),
            task,
            attempts: max_attempts,
            reason: last_err.to_string(),
        }),
        virtual_us: total_us,
        shuffle_bytes: total_shuffle,
        retries,
    }
}

fn ctx_shuffle_bytes(ctx: &TaskContext) -> u64 {
    // attempt_cost_us already includes shuffle time; here we only need the
    // raw byte count for the stage record's cross-network transfer term.
    ctx.raw_shuffle_bytes()
}

fn fault_fires(config: &ClusterConfig, stage: &str, task: usize, attempt: u32) -> bool {
    let prob = config.fault.task_failure_prob;
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    // Keyed SipHash owned by the crate: the fault pattern for a given seed is
    // part of recorded experiment outputs and must survive toolchain bumps.
    let h = stable_hash(&(stage, task, attempt, config.fault.seed));
    let x = h as f64 / u64::MAX as f64;
    x < prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultConfig;

    #[test]
    fn run_job_returns_ordered_partition_outputs() {
        let c = Cluster::local(4);
        let out = c.run_job("square", 6, |i, _ctx| Ok(vec![i * i])).unwrap();
        assert_eq!(
            out,
            vec![vec![0], vec![1], vec![4], vec![9], vec![16], vec![25]]
        );
    }

    #[test]
    fn injected_faults_are_retried_to_success() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::with_probability(0.4, 7);
        cfg.max_task_attempts = 10;
        let c = Cluster::new(cfg);
        let out = c.run_job("flaky", 20, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(out.len(), 20);
        assert!(
            c.metrics().tasks_failed.get() > 0,
            "with p=0.4 over 20 tasks some attempt should fail"
        );
        assert_eq!(c.metrics().tasks_succeeded.get(), 20);
    }

    #[test]
    fn certain_failure_exhausts_attempts() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::with_probability(1.0, 1);
        cfg.max_task_attempts = 3;
        let c = Cluster::new(cfg);
        let err = c
            .run_job::<u32, _>("doomed", 1, |_, _| Ok(vec![]))
            .unwrap_err();
        match err {
            SparkletError::TaskFailed { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(c.metrics().tasks_failed.get(), 3);
    }

    #[test]
    fn user_errors_propagate() {
        let c = Cluster::local(2);
        let err = c
            .run_job::<u32, _>("bad", 2, |i, _| {
                if i == 1 {
                    Err(SparkletError::User("boom".into()))
                } else {
                    Ok(vec![i as u32])
                }
            })
            .unwrap_err();
        assert!(matches!(err, SparkletError::TaskFailed { task: 1, .. }));
    }

    #[test]
    fn stage_costs_are_recorded() {
        let c = Cluster::local(2);
        c.run_job("charged", 3, |_, ctx| {
            ctx.charge_ops(1000);
            Ok(vec![0u8])
        })
        .unwrap();
        assert_eq!(c.clock().stage_count(), 1);
        let stages = c.clock().stages();
        assert_eq!(stages[0].task_us.len(), 3);
        assert!(stages[0].task_us.iter().all(|&t| t > 0));
    }

    #[test]
    fn retries_inflate_virtual_time() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::disabled();
        let baseline = Cluster::new(cfg.clone());
        baseline.run_job("t", 4, |_, _| Ok(vec![0u8])).unwrap();
        let t0 = baseline.virtual_elapsed();

        cfg.fault = FaultConfig::with_probability(0.5, 3);
        cfg.max_task_attempts = 20;
        let flaky = Cluster::new(cfg);
        flaky.run_job("t", 4, |_, _| Ok(vec![0u8])).unwrap();
        let t1 = flaky.virtual_elapsed();
        assert!(
            t1.us > t0.us,
            "retry penalties must stretch virtual time ({} vs {})",
            t1.us,
            t0.us
        );
    }

    #[test]
    fn reset_run_state_clears_everything() {
        let c = Cluster::local(2);
        c.run_job("x", 2, |_, ctx| {
            ctx.counter("things").add(5);
            Ok(vec![0u8])
        })
        .unwrap();
        c.reset_run_state();
        assert_eq!(c.clock().stage_count(), 0);
        assert_eq!(c.metrics().counter("things").get(), 0);
        assert_eq!(c.metrics().jobs_submitted.get(), 0);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(0.5, 42);
        let a: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, "s", t, 0)).collect();
        let b: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, "s", t, 0)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }
}
