//! Cluster handle, worker pool and the wave-based, failure-aware scheduler.
//!
//! Scheduling is driver-authoritative: workers run exactly one task attempt
//! and report back; the driver collects a whole *wave* of outcomes, processes
//! them in task order, and only then decides retries, lineage recovery,
//! rescheduling of attempts lost with a killed executor, and speculative
//! clones. Pushing every decision to a deterministic point on the driver is
//! what makes a run with a fault schedule reproduce the exact same failure
//! and recovery history — and, for deterministic user code, the exact same
//! output — as a fault-free run.

use crate::config::{ClusterConfig, KillWhen};
use crate::error::{Result, SparkletError};
use crate::executor::ExecutorRegistry;
use crate::hash::stable_hash;
use crate::journal::{EventKind, JobReport, RunJournal};
use crate::metrics::ClusterMetrics;
use crate::rdd::Rdd;
use crate::shuffle::ShuffleService;
use crate::simtime::{simulate_morsels, MorselInfo, StageRecord, VirtualClock, VirtualDuration};
use crate::spill::SpillManager;
use crate::storage::BlockManager;
use crate::task::TaskContext;
use crate::Data;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;

type Job = Box<dyn FnOnce(usize) + Send>;

/// A lineage-recovery handler for one shuffle: re-run the given map tasks of
/// the parent stage and re-register their outputs. Owned (strongly) by the
/// shuffle's RDD node; the cluster keeps only a [`Weak`] reference so the
/// registry cannot keep lineage graphs (and through them the cluster itself)
/// alive — once the node is dropped, the shuffle is simply unrecoverable and
/// readers exhaust their retries.
pub(crate) type RecoveryFn = dyn Fn(&Cluster, &[usize]) -> Result<()> + Send + Sync;

/// Handle to an embedded sparklet cluster.
///
/// Cheap to clone; all clones share executors, metrics, storage and shuffle
/// state. Dropping the last clone shuts the worker threads down.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) inner: Arc<ClusterInner>,
}

pub(crate) struct ClusterInner {
    pub config: ClusterConfig,
    pub metrics: ClusterMetrics,
    pub shuffles: ShuffleService,
    pub blocks: BlockManager,
    pub spill: SpillManager,
    pub clock: VirtualClock,
    pub journal: RunJournal,
    pub executors: ExecutorRegistry,
    sender: Sender<Job>,
    next_rdd_id: AtomicU64,
    next_shuffle_id: AtomicU64,
    next_job_id: AtomicU64,
    /// One flag per entry of `config.fault.executor_kills`: has it fired?
    fired_kills: Mutex<Vec<bool>>,
    /// Driver-side fault points passed so far; compared against
    /// `config.fault.driver_kill` by [`Cluster::driver_fault_point`].
    driver_points: AtomicU64,
    /// Shuffle id → (map-task count, recovery handler). See [`RecoveryFn`].
    shuffle_recovery: Mutex<HashMap<u64, (usize, Weak<RecoveryFn>)>>,
}

impl Cluster {
    /// Start a cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        let metrics = ClusterMetrics::new();
        let journal = RunJournal::new();
        let executor_storage =
            (config.memory_per_executor as f64 * BlockManager::STORAGE_FRACTION) as usize;
        let spill = SpillManager::new(
            config.num_executors,
            config.spill.enabled,
            config.spill.shuffle_capacity(config.memory_per_executor),
            metrics.clone(),
        );
        let (sender, receiver) = unbounded::<Job>();
        for worker_id in 0..config.worker_threads() {
            let rx = receiver.clone();
            thread::Builder::new()
                .name(format!("sparklet-worker-{worker_id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job(worker_id);
                    }
                })
                .expect("failed to spawn worker thread");
        }
        Cluster {
            inner: Arc::new(ClusterInner {
                metrics: metrics.clone(),
                shuffles: ShuffleService::new(metrics.clone())
                    .with_journal(journal.clone())
                    .with_spill(spill.clone()),
                blocks: BlockManager::new(executor_storage, config.num_executors, metrics)
                    .with_journal(journal.clone())
                    .with_spill(spill.clone()),
                spill,
                clock: VirtualClock::new(),
                journal,
                executors: ExecutorRegistry::new(config.num_executors),
                sender,
                next_rdd_id: AtomicU64::new(0),
                next_shuffle_id: AtomicU64::new(0),
                next_job_id: AtomicU64::new(0),
                fired_kills: Mutex::new(vec![false; config.fault.executor_kills.len()]),
                driver_points: AtomicU64::new(0),
                shuffle_recovery: Mutex::new(HashMap::new()),
                config,
            }),
        }
    }

    /// Convenience: a local cluster with `parallelism` single-core executors
    /// and fault injection disabled.
    pub fn local(parallelism: usize) -> Self {
        Cluster::new(ClusterConfig::local(parallelism))
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.inner.metrics
    }

    /// The virtual clock accumulating stage costs.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Block manager backing `cache()`.
    pub fn blocks(&self) -> &BlockManager {
        &self.inner.blocks
    }

    /// Shuffle service (exposed for diagnostics and tests).
    pub fn shuffles(&self) -> &ShuffleService {
        &self.inner.shuffles
    }

    /// The executor registry: liveness, incarnations and blacklist state.
    pub fn executors(&self) -> &ExecutorRegistry {
        &self.inner.executors
    }

    /// The disk tier: spill files, codec registry and the joint
    /// resident-memory accounting behind the report's `spill` section.
    pub fn spill(&self) -> &SpillManager {
        &self.inner.spill
    }

    /// The run journal: every stage/task/cache/shuffle event of this
    /// cluster's lifetime (bounded; see [`RunJournal::MAX_EVENTS`]).
    pub fn journal(&self) -> &RunJournal {
        &self.inner.journal
    }

    /// Aggregate the journal, clock and metrics into an exportable
    /// [`JobReport`] (JSON via [`JobReport::to_json`], text via `Display`).
    pub fn job_report(&self) -> JobReport {
        JobReport::capture(self)
    }

    /// Virtual elapsed time of everything run so far on this cluster's own
    /// topology. See [`VirtualClock::makespan`] to query other topologies.
    pub fn virtual_elapsed(&self) -> VirtualDuration {
        self.inner.clock.makespan(
            self.inner.config.num_executors,
            self.inner.config.cores_per_executor,
            &self.inner.config.cost,
        )
    }

    /// Reset metrics, virtual clock, cache, shuffle and failure-domain state
    /// (executor health, fired kill triggers, job ids) — used between
    /// experiment configurations so measurements do not bleed. Semantically a
    /// fresh cluster on the same worker pool.
    pub fn reset_run_state(&self) {
        self.inner.metrics.reset();
        self.inner.clock.reset();
        self.inner.blocks.clear();
        self.inner.shuffles.clear();
        self.inner.spill.clear();
        self.inner.journal.clear();
        self.inner.executors.reset();
        self.inner.next_job_id.store(0, Ordering::Relaxed);
        self.inner.driver_points.store(0, Ordering::Relaxed);
        for fired in self.inner.fired_kills.lock().iter_mut() {
            *fired = false;
        }
    }

    /// Pass a driver-side fault point labelled `label`. Each call consumes
    /// one global point index (0-based, across the cluster's lifetime); if
    /// [`crate::FaultConfig::driver_kill`] arms exactly this index, the call
    /// journals a [`EventKind::DriverKilled`] event and returns the fatal
    /// [`SparkletError::DriverKilled`] — callers must *not* retry it, but
    /// drop their in-memory state and recover from a durable checkpoint.
    /// Otherwise it is free and returns `Ok(())`.
    pub fn driver_fault_point(&self, label: &str) -> Result<()> {
        let point = self.inner.driver_points.fetch_add(1, Ordering::Relaxed);
        if self.inner.config.fault.driver_kill == Some(point) {
            self.inner.journal.record(EventKind::DriverKilled {
                point,
                label: label.to_string(),
            });
            return Err(SparkletError::DriverKilled {
                point,
                label: label.to_string(),
            });
        }
        Ok(())
    }

    /// How many driver-side fault points have been passed so far. A clean
    /// run of a service reports the sweep range for kill-point chaos tests.
    pub fn driver_points_passed(&self) -> u64 {
        self.inner.driver_points.load(Ordering::Relaxed)
    }

    /// Charge `us` of driver-side work to the virtual clock as a
    /// single-task stage named `name` and advance the journal's clock by the
    /// same amount. Used by driver-level services (checkpoint writes, retry
    /// backoff waits) whose cost is not incurred by any executor task.
    pub fn charge_driver_stage(&self, name: &str, us: u64) {
        self.inner.clock.record_stage(StageRecord {
            name: name.to_string(),
            task_us: vec![us],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        self.inner.journal.advance(us);
    }

    pub(crate) fn new_rdd_id(&self) -> u64 {
        self.inner.next_rdd_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_shuffle_id(&self) -> u64 {
        self.inner.next_shuffle_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Remember how to rebuild `shuffle_id`'s map outputs from lineage. The
    /// registry holds the handler weakly; see [`RecoveryFn`].
    pub(crate) fn register_shuffle_recovery(
        &self,
        shuffle_id: u64,
        total_maps: usize,
        handler: &Arc<RecoveryFn>,
    ) {
        self.inner
            .shuffle_recovery
            .lock()
            .insert(shuffle_id, (total_maps, Arc::downgrade(handler)));
    }

    /// Rebuild the missing map outputs of `shuffle_id` from lineage, if a
    /// recovery handler is registered and still alive. Returns whether the
    /// shuffle is complete again afterwards; on `false` the readers' retries
    /// exhaust naturally (there is nothing else to do).
    pub(crate) fn recover_shuffle(&self, shuffle_id: u64) -> bool {
        if self.inner.shuffles.is_complete(shuffle_id) {
            return true;
        }
        let entry = self.inner.shuffle_recovery.lock().get(&shuffle_id).cloned();
        let Some((total_maps, weak)) = entry else {
            return false;
        };
        let Some(handler) = weak.upgrade() else {
            return false;
        };
        let missing = self
            .inner
            .shuffles
            .missing_maps(shuffle_id)
            .unwrap_or_else(|| (0..total_maps).collect());
        if missing.is_empty() {
            return self.inner.shuffles.mark_complete(shuffle_id);
        }
        match handler(self, &missing) {
            Ok(()) => {
                for &m in &missing {
                    self.inner.journal.record(EventKind::Recomputed {
                        shuffle: shuffle_id,
                        map_task: m,
                    });
                }
                self.inner
                    .metrics
                    .recomputed_tasks
                    .add(missing.len() as u64);
                self.inner.shuffles.mark_complete(shuffle_id)
            }
            Err(_) => false,
        }
    }

    /// Kill `executor` now: evict its cached blocks, invalidate its shuffle
    /// map outputs, and either restart it with a new incarnation or
    /// blacklist it (see [`crate::FaultConfig::max_executor_failures`]).
    /// No-op if the executor is unknown or already blacklisted.
    pub(crate) fn kill_executor(&self, executor: usize) {
        let max = self.inner.config.fault.max_executor_failures;
        let Some(outcome) = self.inner.executors.kill(executor, max) else {
            return;
        };
        let (blocks_lost, _bytes) = self.inner.blocks.evict_executor(executor);
        let map_outputs_lost = self.inner.shuffles.invalidate_executor(executor);
        // The disk tier is executor-local: its spill file dies with the
        // node, orphaning every slot written under the old incarnation.
        self.inner.spill.invalidate_executor(executor);
        self.inner.metrics.executors_lost.inc();
        if outcome.blacklisted {
            self.inner.metrics.executors_blacklisted.inc();
        }
        self.inner.journal.record(EventKind::ExecutorLost {
            executor,
            incarnation: outcome.incarnation_lost,
            blacklisted: outcome.blacklisted,
            blocks_lost,
            map_outputs_lost,
        });
    }

    /// Fire any scheduled kills due at this point: `AtVirtualTime` triggers
    /// at stage start (`completions == 0`) once the virtual clock passed
    /// their threshold, `InStage` triggers when the named stage has seen
    /// exactly `after_completions` completed tasks.
    fn process_kill_triggers(&self, stage: &str, completions: usize) {
        if self.inner.config.fault.executor_kills.is_empty() {
            return;
        }
        let mut to_fire = Vec::new();
        {
            let mut fired = self.inner.fired_kills.lock();
            for (i, kill) in self.inner.config.fault.executor_kills.iter().enumerate() {
                if fired[i] {
                    continue;
                }
                let due = match &kill.when {
                    KillWhen::AtVirtualTime { us } => {
                        completions == 0 && self.inner.journal.now_us() >= *us
                    }
                    KillWhen::InStage {
                        name,
                        after_completions,
                    } => name == stage && *after_completions == completions,
                };
                if due {
                    fired[i] = true;
                    to_fire.push(kill.executor);
                }
            }
        }
        for executor in to_fire {
            self.kill_executor(executor);
        }
    }

    /// Distribute `data` over `num_partitions` as an [`Rdd`].
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        Rdd::from_collection(self.clone(), data, num_partitions.max(1))
    }

    /// Run one stage: `f(partition_index, ctx)` for each of `num_tasks`
    /// partitions, with deterministic fault injection, per-task retries,
    /// executor-failure recovery and virtual-cost recording. Returns the
    /// per-partition outputs in order.
    ///
    /// Must be called from driver code (never from inside a task) — shuffle
    /// dependencies are materialised driver-side before dependent stages run,
    /// which is what makes the fixed worker pool deadlock-free.
    pub fn run_job<T, F>(&self, stage: &str, num_tasks: usize, f: F) -> Result<Vec<Vec<T>>>
    where
        T: Data,
        F: Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync + 'static,
    {
        self.run_job_inner(stage, num_tasks, f, None)
    }

    /// Run one stage morsel-driven: each of `partitions` is cut into
    /// contiguous *morsels* whose summed `weight` stays at or under
    /// [`crate::SchedConfig::morsel_ops`], and `f(partition, slice, ctx)`
    /// runs once per morsel. Virtual placement is owner-queues plus work
    /// stealing (see [`simulate_morsels`]); the first morsel of a partition
    /// pays the full task launch overhead, follow-ups only
    /// [`crate::CostModelConfig::morsel_dispatch_overhead_us`], so an
    /// unsplit stage costs exactly what [`Cluster::run_job`] charges.
    ///
    /// Results are reassembled in (partition, morsel-index) order, so the
    /// returned per-partition outputs are bit-identical regardless of worker
    /// count, morsel budget or steal interleaving — for deterministic `f`,
    /// `run_morsel_job` and whole-partition execution agree byte-for-byte.
    pub fn run_morsel_job<T, U, W, F>(
        &self,
        stage: &str,
        partitions: Vec<Vec<T>>,
        weight: W,
        f: F,
    ) -> Result<Vec<Vec<U>>>
    where
        T: Send + Sync + 'static,
        U: Data,
        W: Fn(&T) -> u64,
        F: Fn(usize, &[T], &TaskContext) -> Result<Vec<U>> + Send + Sync + 'static,
    {
        let budget = self.inner.config.sched.morsel_ops.max(1);
        let cost = &self.inner.config.cost;
        // Cut each partition into contiguous weight-bounded morsels. Every
        // partition emits at least one morsel (even an empty one), so the
        // output keeps one entry per input partition.
        let mut ranges: Vec<(usize, usize, usize)> = Vec::new();
        for (p, part) in partitions.iter().enumerate() {
            let mut start = 0usize;
            let mut acc = 0u64;
            for (i, item) in part.iter().enumerate() {
                let w = weight(item);
                if i > start && acc.saturating_add(w) > budget {
                    ranges.push((p, start, i));
                    start = i;
                    acc = 0;
                }
                acc = acc.saturating_add(w);
            }
            ranges.push((p, start, part.len()));
        }
        let mut partition_of = Vec::with_capacity(ranges.len());
        let mut overhead_of = Vec::with_capacity(ranges.len());
        for (m, &(p, ..)) in ranges.iter().enumerate() {
            partition_of.push(p);
            let first_of_partition = m == 0 || ranges[m - 1].0 != p;
            overhead_of.push(if first_of_partition {
                cost.task_launch_overhead_us
            } else {
                cost.morsel_dispatch_overhead_us
            });
        }
        let meta = MorselMeta {
            partition_of,
            overhead_of,
            steal: self.inner.config.sched.steal,
        };
        let num_partitions = partitions.len();
        let data = Arc::new(partitions);
        let ranges = Arc::new(ranges);
        let body = {
            let data = data.clone();
            let ranges = ranges.clone();
            move |task: usize, ctx: &TaskContext| {
                let (p, start, end) = ranges[task];
                f(p, &data[p][start..end], ctx)
            }
        };
        let morsel_results = self.run_job_inner(stage, ranges.len(), body, Some(meta))?;
        let mut out: Vec<Vec<U>> = (0..num_partitions).map(|_| Vec::new()).collect();
        for (chunk, &(p, ..)) in morsel_results.into_iter().zip(ranges.iter()) {
            out[p].extend(chunk);
        }
        Ok(out)
    }

    fn run_job_inner<T, F>(
        &self,
        stage: &str,
        num_tasks: usize,
        f: F,
        morsel: Option<MorselMeta>,
    ) -> Result<Vec<Vec<T>>>
    where
        T: Data,
        F: Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync + 'static,
    {
        let job_id = self.inner.next_job_id.fetch_add(1, Ordering::Relaxed);
        let max_attempts = self.inner.config.max_task_attempts.max(1);
        let penalty = self.inner.config.cost.retry_penalty_us;
        self.inner.metrics.jobs_submitted.inc();
        self.inner.journal.record(EventKind::StageStarted {
            stage: stage.to_string(),
            tasks: num_tasks,
        });
        let f = Arc::new(f);
        let (morsel_info, overheads) = match morsel {
            Some(m) => (
                Some(MorselInfo {
                    partition_of: m.partition_of,
                    steal: m.steal,
                }),
                m.overhead_of,
            ),
            None => (
                None,
                vec![self.inner.config.cost.task_launch_overhead_us; num_tasks],
            ),
        };

        let mut results: Vec<Option<Vec<T>>> = (0..num_tasks).map(|_| None).collect();
        let mut exhausted: Vec<Option<SparkletError>> = (0..num_tasks).map(|_| None).collect();
        let mut attempts_used = vec![0u32; num_tasks];
        let mut task_us = vec![0u64; num_tasks];
        let mut shuffle_bytes = 0u64;
        let mut retries = 0u64;
        let mut completions = 0usize;

        self.process_kill_triggers(stage, completions);

        // Wave loop: submit all runnable attempts, collect every outcome,
        // then decide — in task order — what each outcome means. Recovery
        // and retries feed the next wave.
        let mut pending: Vec<(usize, u32)> = (0..num_tasks).map(|t| (t, 0)).collect();
        while !pending.is_empty() {
            let mut wave = Vec::with_capacity(pending.len());
            for &(task, attempt) in &pending {
                match self.inner.executors.place(task, attempt) {
                    Some((executor, incarnation)) => {
                        wave.push((task, attempt, executor, incarnation, overheads[task]))
                    }
                    None => {
                        self.finish_stage(stage, task_us, shuffle_bytes, retries, morsel_info);
                        return Err(SparkletError::NoHealthyExecutors {
                            stage: stage.to_string(),
                        });
                    }
                }
            }
            pending.clear();
            let mut outcomes = self.run_wave(stage, job_id, &wave, morsel_info.is_none(), &f);
            outcomes.sort_by_key(|o| (o.task, o.attempt));
            let mut failed_shuffles: Vec<u64> = Vec::new();
            for outcome in outcomes {
                // An attempt placed on an incarnation that has since died
                // is lost, not failed: its result is discarded and the task
                // rescheduled on a survivor with the same attempt number.
                if !self
                    .inner
                    .executors
                    .is_current(outcome.executor, outcome.incarnation)
                {
                    self.inner.metrics.tasks_lost.inc();
                    self.inner.journal.record(EventKind::TaskLost {
                        stage: stage.to_string(),
                        task: outcome.task,
                        attempt: outcome.attempt,
                        executor: outcome.executor,
                    });
                    task_us[outcome.task] += outcome.virtual_us;
                    shuffle_bytes += outcome.shuffle_bytes;
                    pending.push((outcome.task, outcome.attempt));
                    continue;
                }
                attempts_used[outcome.task] = attempts_used[outcome.task].max(outcome.attempt + 1);
                task_us[outcome.task] += outcome.virtual_us;
                shuffle_bytes += outcome.shuffle_bytes;
                match outcome.result {
                    Ok(data) => {
                        self.inner.metrics.tasks_succeeded.inc();
                        // Morsel stages journal at stage granularity (plus
                        // coalesced steal/idle events): per-morsel success
                        // records would grow the journal O(morsels).
                        if morsel_info.is_none() {
                            self.inner.journal.record(EventKind::TaskSucceeded {
                                stage: stage.to_string(),
                                task: outcome.task,
                                attempt: outcome.attempt,
                                virtual_us: outcome.virtual_us,
                                records_out: data.len() as u64,
                            });
                        }
                        results[outcome.task] = Some(data);
                        completions += 1;
                        self.process_kill_triggers(stage, completions);
                    }
                    Err(e) => {
                        self.inner.metrics.tasks_failed.inc();
                        if let SparkletError::FetchFailed { shuffle, bucket } = &e {
                            self.inner.metrics.fetch_failures.inc();
                            self.inner.journal.record(EventKind::FetchFailed {
                                stage: stage.to_string(),
                                task: outcome.task,
                                shuffle: *shuffle,
                                bucket: *bucket,
                            });
                            failed_shuffles.push(*shuffle);
                        }
                        let will_retry = outcome.attempt + 1 < max_attempts;
                        self.inner.journal.record(EventKind::TaskFailed {
                            stage: stage.to_string(),
                            task: outcome.task,
                            attempt: outcome.attempt,
                            virtual_us: outcome.virtual_us,
                            reason: e.to_string(),
                            will_retry,
                        });
                        retries += 1;
                        if will_retry {
                            // The reschedule delay is only paid when a retry
                            // actually follows; a final failed attempt ends
                            // the task there and then.
                            task_us[outcome.task] += penalty;
                            pending.push((outcome.task, outcome.attempt + 1));
                        } else {
                            exhausted[outcome.task] = Some(e);
                        }
                    }
                }
            }
            // Lineage recovery: rebuild every shuffle that failed a fetch
            // this wave before its readers retry in the next one.
            failed_shuffles.sort_unstable();
            failed_shuffles.dedup();
            for shuffle_id in failed_shuffles {
                self.recover_shuffle(shuffle_id);
            }
        }

        let first_error = exhausted
            .iter_mut()
            .enumerate()
            .find_map(|(task, e)| e.take().map(|e| (task, e)));
        if let Some((task, e)) = first_error {
            self.finish_stage(stage, task_us, shuffle_bytes, retries, morsel_info);
            return Err(SparkletError::TaskFailed {
                stage: stage.to_string(),
                task,
                attempts: attempts_used[task],
                reason: e.to_string(),
            });
        }

        if self.inner.config.speculation && num_tasks >= 2 {
            // A stolen morsel already ran away from its home worker — a
            // speculative clone would be a second in-flight attempt of it.
            // Replay the steal schedule to find and skip those.
            let skip = match &morsel_info {
                Some(info) if info.steal => {
                    simulate_morsels(
                        &task_us,
                        &info.partition_of,
                        self.inner.config.total_slots(),
                        true,
                    )
                    .stolen
                }
                _ => vec![false; num_tasks],
            };
            self.speculate(
                stage,
                job_id,
                &attempts_used,
                &mut task_us,
                &overheads,
                &skip,
                morsel_info.is_none(),
                &f,
            );
        }

        self.finish_stage(stage, task_us, shuffle_bytes, retries, morsel_info);
        Ok(results
            .into_iter()
            .map(|r| r.expect("missing task result"))
            .collect())
    }

    /// Submit one wave of placed attempts to the worker pool and collect
    /// every outcome (no decisions are made here).
    fn run_wave<T, F>(
        &self,
        stage: &str,
        job_id: u64,
        wave: &[(usize, u32, usize, u32, u64)],
        journal_launches: bool,
        f: &Arc<F>,
    ) -> Vec<AttemptOutcome<T>>
    where
        T: Data,
        F: Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync + 'static,
    {
        let (tx, rx) = unbounded::<AttemptOutcome<T>>();
        for &(task, attempt, executor, incarnation, overhead_us) in wave {
            let f = f.clone();
            let tx = tx.clone();
            let inner = self.inner.clone();
            let stage_name = stage.to_string();
            let job: Job = Box::new(move |_worker_id| {
                let outcome = run_one_attempt(
                    &inner,
                    &stage_name,
                    job_id,
                    task,
                    attempt,
                    executor,
                    incarnation,
                    overhead_us,
                    journal_launches,
                    &*f,
                );
                let _ = tx.send(outcome);
            });
            self.inner
                .sender
                .send(job)
                .expect("worker pool unavailable");
        }
        drop(tx);
        (0..wave.len())
            .map(|_| rx.recv().expect("task result channel closed early"))
            .collect()
    }

    /// Speculative execution: after a stage's regular attempts succeed, run
    /// one clean clone of every task slower than twice the stage median on a
    /// rotated executor. A clone wins only if it is strictly cheaper than
    /// the original's accumulated cost; losers are discarded (shuffle writes
    /// are keep-first, so a losing clone cannot alter state). Speculative
    /// attempts are tracked by the `speculative_*` counters only — they
    /// never perturb `tasks_succeeded` / `tasks_failed`.
    #[allow(clippy::too_many_arguments)]
    fn speculate<T, F>(
        &self,
        stage: &str,
        job_id: u64,
        attempts_used: &[u32],
        task_us: &mut [u64],
        overheads: &[u64],
        skip: &[bool],
        journal_launches: bool,
        f: &Arc<F>,
    ) where
        T: Data,
        F: Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync + 'static,
    {
        let mut sorted = task_us.to_vec();
        sorted.sort_unstable();
        let median = sorted[(sorted.len() - 1) / 2];
        if median == 0 {
            return;
        }
        let mut wave = Vec::new();
        for (task, &us) in task_us.iter().enumerate() {
            if us > 2 * median && !skip[task] {
                if let Some((executor, incarnation)) =
                    self.inner.executors.place(task, attempts_used[task])
                {
                    self.inner.metrics.speculative_launched.inc();
                    wave.push((
                        task,
                        attempts_used[task],
                        executor,
                        incarnation,
                        overheads[task],
                    ));
                }
            }
        }
        if wave.is_empty() {
            return;
        }
        let mut outcomes = self.run_wave(stage, job_id, &wave, journal_launches, f);
        outcomes.sort_by_key(|o| (o.task, o.attempt));
        for outcome in outcomes {
            let won = outcome.result.is_ok()
                && self
                    .inner
                    .executors
                    .is_current(outcome.executor, outcome.incarnation)
                && outcome.virtual_us < task_us[outcome.task];
            if won {
                self.inner.metrics.speculative_wins.inc();
                task_us[outcome.task] = outcome.virtual_us;
            }
            self.inner.journal.record(EventKind::Speculative {
                stage: stage.to_string(),
                task: outcome.task,
                won,
            });
        }
    }

    /// Close a stage out: record its cost, advance the journal's virtual
    /// stamp and journal the stage end. Morsel stages also replay the steal
    /// schedule once to emit coalesced per-stage `MorselStolen` /
    /// `WorkerIdle` events (bounded by workers², not by morsel count) and
    /// bump the morsel counters.
    fn finish_stage(
        &self,
        stage: &str,
        task_us: Vec<u64>,
        shuffle_bytes: u64,
        retries: u64,
        morsels: Option<MorselInfo>,
    ) {
        let stage_work: u64 = task_us.iter().sum();
        if let Some(info) = &morsels {
            self.inner
                .metrics
                .morsels_executed
                .add(task_us.len() as u64);
            let sim = simulate_morsels(
                &task_us,
                &info.partition_of,
                self.inner.config.total_slots(),
                info.steal,
            );
            self.inner.metrics.morsels_stolen.add(sim.stolen_count());
            for &(thief, victim, count) in &sim.steals {
                self.inner.journal.record(EventKind::MorselStolen {
                    stage: stage.to_string(),
                    thief,
                    victim,
                    count,
                });
            }
            for (worker, &idle_us) in sim.idle_us.iter().enumerate() {
                if idle_us > 0 {
                    self.inner.journal.record(EventKind::WorkerIdle {
                        stage: stage.to_string(),
                        worker,
                        idle_us,
                    });
                }
            }
        }
        self.inner.clock.record_stage(StageRecord {
            name: stage.to_string(),
            task_us,
            shuffle_bytes,
            retries,
            morsels,
        });
        self.inner.journal.advance(stage_work);
        self.inner.journal.record(EventKind::StageFinished {
            stage: stage.to_string(),
            virtual_us: stage_work,
            shuffle_bytes,
            retries,
        });
    }
}

/// Driver-side metadata of a morsel stage: the home partition and launch
/// overhead of every morsel, plus whether stealing is on. Built by
/// [`Cluster::run_morsel_job`], consumed by the scheduler core.
struct MorselMeta {
    partition_of: Vec<usize>,
    overhead_of: Vec<u64>,
    steal: bool,
}

struct AttemptOutcome<T> {
    task: usize,
    attempt: u32,
    executor: usize,
    incarnation: u32,
    result: Result<Vec<T>>,
    virtual_us: u64,
    shuffle_bytes: u64,
}

/// Worker-side body: run exactly one attempt and report what happened. All
/// retry/recovery decisions belong to the driver.
#[allow(clippy::too_many_arguments)]
fn run_one_attempt<T: Data>(
    inner: &ClusterInner,
    stage: &str,
    job_id: u64,
    task: usize,
    attempt: u32,
    executor: usize,
    incarnation: u32,
    overhead_us: u64,
    journal_launch: bool,
    f: &(dyn Fn(usize, &TaskContext) -> Result<Vec<T>> + Send + Sync),
) -> AttemptOutcome<T> {
    inner.metrics.tasks_launched.inc();
    // Morsel stages skip per-attempt launch records — the journal would
    // otherwise grow O(morsels); see `run_job_inner`.
    if journal_launch {
        inner.journal.record(EventKind::TaskLaunched {
            stage: stage.to_string(),
            task,
            attempt,
            executor,
        });
    }
    // Morsels after the first of a partition pay dispatch, not full launch.
    let mut cost = inner.config.cost;
    cost.task_launch_overhead_us = overhead_us;
    let ctx = TaskContext::new(
        stage,
        task,
        attempt,
        executor,
        inner.metrics.clone(),
        cost,
        inner.config.memory_per_executor,
    );
    let result = {
        let _guard = ctx.install();
        if fault_fires(&inner.config, job_id, stage, task, attempt) {
            Err(SparkletError::InjectedFault)
        } else {
            f(task, &ctx)
        }
    };
    if let Ok(data) = &result {
        ctx.add_records_out(data.len() as u64);
    }
    AttemptOutcome {
        task,
        attempt,
        executor,
        incarnation,
        virtual_us: ctx.attempt_cost_us(),
        shuffle_bytes: ctx.raw_shuffle_bytes(),
        result,
    }
}

fn fault_fires(
    config: &ClusterConfig,
    job_id: u64,
    stage: &str,
    task: usize,
    attempt: u32,
) -> bool {
    let prob = config.fault.task_failure_prob;
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    // Keyed SipHash owned by the crate: the fault pattern for a given seed is
    // part of recorded experiment outputs and must survive toolchain bumps.
    // The job id is mixed in so two jobs running an identically named stage
    // (e.g. repeated actions on one RDD) draw independent fault patterns.
    let h = stable_hash(&(job_id, stage, task, attempt, config.fault.seed));
    let x = h as f64 / u64::MAX as f64;
    x < prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultConfig, SchedConfig};

    #[test]
    fn driver_fault_point_fires_exactly_at_its_armed_index() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::disabled().kill_driver_at_point(2);
        let c = Cluster::new(cfg);
        assert!(c.driver_fault_point("a").is_ok());
        assert!(c.driver_fault_point("b").is_ok());
        let err = c.driver_fault_point("commit").unwrap_err();
        assert_eq!(
            err,
            SparkletError::DriverKilled {
                point: 2,
                label: "commit".into()
            }
        );
        assert!(err.is_driver_kill());
        // Points past the armed one are free again (the service is expected
        // to have crashed; a recovered service runs on a fresh cluster).
        assert!(c.driver_fault_point("later").is_ok());
        assert_eq!(c.driver_points_passed(), 4);
        let tags: Vec<&str> = c.journal().events().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, vec!["driver_killed"]);
        c.reset_run_state();
        assert_eq!(c.driver_points_passed(), 0);
    }

    #[test]
    fn charge_driver_stage_advances_clock_and_journal() {
        let c = Cluster::local(2);
        let before = c.journal().now_us();
        c.charge_driver_stage("ingest-checkpoint", 5_000);
        assert_eq!(c.journal().now_us(), before + 5_000);
        let stages = c.clock().stages();
        let s = stages.iter().find(|s| s.name == "ingest-checkpoint");
        assert_eq!(s.map(|s| s.task_us.clone()), Some(vec![5_000]));
    }

    #[test]
    fn run_job_returns_ordered_partition_outputs() {
        let c = Cluster::local(4);
        let out = c.run_job("square", 6, |i, _ctx| Ok(vec![i * i])).unwrap();
        assert_eq!(
            out,
            vec![vec![0], vec![1], vec![4], vec![9], vec![16], vec![25]]
        );
    }

    #[test]
    fn injected_faults_are_retried_to_success() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::with_probability(0.4, 7);
        cfg.max_task_attempts = 10;
        let c = Cluster::new(cfg);
        let out = c.run_job("flaky", 20, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(out.len(), 20);
        assert!(
            c.metrics().tasks_failed.get() > 0,
            "with p=0.4 over 20 tasks some attempt should fail"
        );
        assert_eq!(c.metrics().tasks_succeeded.get(), 20);
    }

    #[test]
    fn certain_failure_exhausts_attempts() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::with_probability(1.0, 1);
        cfg.max_task_attempts = 3;
        let c = Cluster::new(cfg);
        let err = c
            .run_job::<u32, _>("doomed", 1, |_, _| Ok(vec![]))
            .unwrap_err();
        match err {
            SparkletError::TaskFailed { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(c.metrics().tasks_failed.get(), 3);
    }

    #[test]
    fn user_errors_propagate() {
        let c = Cluster::local(2);
        let err = c
            .run_job::<u32, _>("bad", 2, |i, _| {
                if i == 1 {
                    Err(SparkletError::User("boom".into()))
                } else {
                    Ok(vec![i as u32])
                }
            })
            .unwrap_err();
        assert!(matches!(err, SparkletError::TaskFailed { task: 1, .. }));
    }

    #[test]
    fn stage_costs_are_recorded() {
        let c = Cluster::local(2);
        c.run_job("charged", 3, |_, ctx| {
            ctx.charge_ops(1000);
            Ok(vec![0u8])
        })
        .unwrap();
        assert_eq!(c.clock().stage_count(), 1);
        let stages = c.clock().stages();
        assert_eq!(stages[0].task_us.len(), 3);
        assert!(stages[0].task_us.iter().all(|&t| t > 0));
    }

    #[test]
    fn retries_inflate_virtual_time() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::disabled();
        let baseline = Cluster::new(cfg.clone());
        baseline.run_job("t", 4, |_, _| Ok(vec![0u8])).unwrap();
        let t0 = baseline.virtual_elapsed();

        cfg.fault = FaultConfig::with_probability(0.5, 3);
        cfg.max_task_attempts = 20;
        let flaky = Cluster::new(cfg);
        flaky.run_job("t", 4, |_, _| Ok(vec![0u8])).unwrap();
        let t1 = flaky.virtual_elapsed();
        assert!(
            t1.us > t0.us,
            "retry penalties must stretch virtual time ({} vs {})",
            t1.us,
            t0.us
        );
    }

    #[test]
    fn retry_penalty_is_not_charged_on_the_final_failed_attempt() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(1.0, 1);
        cfg.max_task_attempts = 2;
        let overhead = cfg.cost.task_launch_overhead_us;
        let penalty = cfg.cost.retry_penalty_us;
        let c = Cluster::new(cfg);
        let _ = c
            .run_job::<u8, _>("doomed", 1, |_, _| Ok(vec![]))
            .unwrap_err();
        let stages = c.clock().stages();
        assert_eq!(stages.len(), 1);
        // Two wasted attempts, but only the first is followed by a retry —
        // exactly one reschedule penalty is paid.
        assert_eq!(stages[0].task_us[0], 2 * overhead + penalty);
    }

    #[test]
    fn reset_run_state_clears_everything() {
        let c = Cluster::local(2);
        c.run_job("x", 2, |_, ctx| {
            ctx.counter("things").add(5);
            Ok(vec![0u8])
        })
        .unwrap();
        c.reset_run_state();
        assert_eq!(c.clock().stage_count(), 0);
        assert_eq!(c.metrics().counter("things").get(), 0);
        assert_eq!(c.metrics().jobs_submitted.get(), 0);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(0.5, 42);
        let a: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, 0, "s", t, 0)).collect();
        let b: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, 0, "s", t, 0)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn fault_pattern_mixes_the_job_id() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(0.5, 42);
        let job0: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, 0, "s", t, 0)).collect();
        let job1: Vec<bool> = (0..64).map(|t| fault_fires(&cfg, 1, "s", t, 0)).collect();
        assert_ne!(
            job0, job1,
            "two jobs running the same stage name must draw independent faults"
        );
    }

    #[test]
    fn fault_pattern_is_pinned() {
        // Golden: the (job, stage, task, attempt, seed) hash is part of
        // recorded experiment outputs; this fails if the mixing changes.
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(0.25, 1337);
        let fires: u64 = (0..256)
            .map(|t| fault_fires(&cfg, 3, "golden", t, 1) as u64)
            .sum();
        let mut first_16 = [false; 16];
        for (t, slot) in first_16.iter_mut().enumerate() {
            *slot = fault_fires(&cfg, 3, "golden", t, 1);
        }
        assert_eq!((fires, first_16), PINNED_FAULT_PATTERN);
    }

    /// Captured from a reference run; see `fault_pattern_is_pinned`.
    const PINNED_FAULT_PATTERN: (u64, [bool; 16]) = (
        73,
        [
            false, false, false, false, true, false, true, false, false, false, false, true, true,
            false, false, false,
        ],
    );

    #[test]
    fn kill_mid_stage_reschedules_lost_tasks_on_survivors() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::disabled().kill_in_stage(0, "work", 1);
        let c = Cluster::new(cfg);
        let out = c.run_job("work", 4, |i, _| Ok(vec![i as u32])).unwrap();
        assert_eq!(out, vec![vec![0], vec![1], vec![2], vec![3]]);
        // Wave 1 places tasks 0,2 on executor 0 and 1,3 on executor 1. The
        // kill fires after task 0's completion is processed, so task 2's
        // result (old incarnation) is discarded and rescheduled.
        assert_eq!(c.metrics().executors_lost.get(), 1);
        assert_eq!(c.metrics().executors_blacklisted.get(), 0);
        assert_eq!(c.metrics().tasks_lost.get(), 1);
        assert_eq!(c.metrics().tasks_succeeded.get(), 4);
        assert_eq!(c.metrics().tasks_failed.get(), 0, "lost is not failed");
        assert_eq!(c.executors().alive_count(), 2, "restarted, not blacklisted");
    }

    #[test]
    fn kill_evicts_blocks_and_invalidates_shuffle_outputs() {
        let c = Cluster::local(2);
        c.blocks().put((9, 0), Arc::new(vec![1u8, 2, 3]), 3, 0);
        c.shuffles()
            .write_map_output(4, 0, 1, 1, 0, vec![vec![5u8]], 1)
            .unwrap();
        c.shuffles().mark_complete(4);
        c.kill_executor(0);
        assert!(c.blocks().get::<u8>((9, 0)).is_none());
        assert!(!c.shuffles().is_complete(4));
        assert_eq!(c.metrics().executors_lost.get(), 1);
        let tags: Vec<&str> = c.journal().events().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"executor_lost"));
    }

    #[test]
    fn blacklisting_every_executor_fails_the_job_cleanly() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::disabled().kill_in_stage(0, "doomed", 0);
        cfg.fault.max_executor_failures = 1;
        let c = Cluster::new(cfg);
        let err = c
            .run_job::<u8, _>("doomed", 2, |_, _| Ok(vec![]))
            .unwrap_err();
        assert_eq!(
            err,
            SparkletError::NoHealthyExecutors {
                stage: "doomed".into()
            }
        );
        assert_eq!(c.metrics().executors_blacklisted.get(), 1);
    }

    #[test]
    fn fetch_failures_recover_from_registered_lineage() {
        let c = Cluster::local(2);
        let sid = c.new_shuffle_id();
        let handler: Arc<RecoveryFn> = Arc::new(move |cluster: &Cluster, maps: &[usize]| {
            for &m in maps {
                cluster.shuffles().write_map_output(
                    sid,
                    m,
                    2,
                    2,
                    0,
                    vec![vec![m as u32], vec![10 + m as u32]],
                    8,
                )?;
            }
            Ok(())
        });
        c.register_shuffle_recovery(sid, 2, &handler);
        // Materialise both map outputs on executor 1, then lose executor 1.
        handler(&c, &[0, 1]).unwrap();
        c.shuffles().mark_complete(sid);
        c.shuffles().invalidate_executor(1); // writes above used executor 0
        c.shuffles().invalidate_executor(0);
        assert!(!c.shuffles().is_complete(sid));
        let reader = c.clone();
        let out = c
            .run_job("read", 2, move |i, _| {
                reader.shuffles().read_bucket::<u32>(sid, i)
            })
            .unwrap();
        assert_eq!(out, vec![vec![0, 1], vec![10, 11]]);
        assert_eq!(
            c.metrics().fetch_failures.get(),
            2,
            "both readers failed once"
        );
        assert_eq!(c.metrics().recomputed_tasks.get(), 2);
        let tags: Vec<&str> = c.journal().events().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"fetch_failed"));
        assert!(tags.contains(&"recomputed"));
    }

    #[test]
    fn unrecoverable_fetch_failures_exhaust_attempts() {
        let mut cfg = ClusterConfig::local(2);
        cfg.max_task_attempts = 3;
        let c = Cluster::new(cfg);
        let reader = c.clone();
        let err = c
            .run_job::<u8, _>("read", 1, move |_, _| reader.shuffles().read_bucket(77, 0))
            .unwrap_err();
        match err {
            SparkletError::TaskFailed {
                attempts, reason, ..
            } => {
                assert_eq!(attempts, 3, "fetch failures count toward the budget");
                assert!(reason.contains("fetch failed"), "reason: {reason}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(c.metrics().fetch_failures.get(), 3);
    }

    #[test]
    fn speculation_clones_stragglers_and_keeps_the_faster_result() {
        let mut cfg = ClusterConfig::local(2);
        cfg.speculation = true;
        let overhead = cfg.cost.task_launch_overhead_us;
        let c = Cluster::new(cfg);
        // Task 0 fails its first attempt (paying the retry penalty, which
        // makes it a straggler); the speculative clone runs clean and wins.
        let out = c
            .run_job("skewed", 4, |i, ctx| {
                if i == 0 && ctx.attempt() == 0 {
                    return Err(SparkletError::User("slow".into()));
                }
                Ok(vec![i as u32])
            })
            .unwrap();
        assert_eq!(out, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(c.metrics().speculative_launched.get(), 1);
        assert_eq!(c.metrics().speculative_wins.get(), 1);
        // The winning clone's cost replaced the straggler's accumulated one.
        assert_eq!(c.clock().stages()[0].task_us[0], overhead);
        let tags: Vec<&str> = c.journal().events().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"speculative"));
    }

    #[test]
    fn speculation_stays_off_by_default() {
        let c = Cluster::local(2);
        c.run_job("skewed", 4, |i, ctx| {
            if i == 0 {
                ctx.charge_ops(10_000_000);
            }
            Ok(vec![i as u32])
        })
        .unwrap();
        assert_eq!(c.metrics().speculative_launched.get(), 0);
    }

    #[test]
    fn morsel_job_reassembles_partition_outputs_in_order() {
        let c = Cluster::local(4);
        let partitions: Vec<Vec<u32>> = (0..6)
            .map(|p| {
                (0..(p as u32 * 7 + 1))
                    .map(|i| p as u32 * 100 + i)
                    .collect()
            })
            .collect();
        let expected = partitions.clone();
        let out = c
            .run_morsel_job(
                "morsel",
                partitions,
                |_| 5_000,
                |_, items, _| Ok(items.to_vec()),
            )
            .unwrap();
        assert_eq!(out, expected);
        assert!(
            c.metrics().morsels_executed.get() > 6,
            "heavy partitions must split into several morsels"
        );
    }

    #[test]
    fn morsel_output_is_invariant_under_budget_and_stealing() {
        let baseline: Vec<Vec<u64>> = vec![
            (0..40).map(|x| x * 2).collect(),
            (40..45).map(|x| x * 2 + 1).collect(),
            vec![],
        ];
        for (morsel_ops, steal) in [(u64::MAX, false), (1, true), (7, false), (7, true)] {
            let mut cfg = ClusterConfig::local(3);
            cfg.sched = SchedConfig { morsel_ops, steal };
            let c = Cluster::new(cfg);
            let partitions: Vec<Vec<u64>> = vec![(0..40).collect(), (40..45).collect(), Vec::new()];
            let out = c
                .run_morsel_job(
                    "m",
                    partitions,
                    |&x| x.max(1),
                    move |p, items, ctx| {
                        ctx.charge_ops(items.len() as u64);
                        Ok(items.iter().map(|&x| x * 2 + (p as u64 & 1)).collect())
                    },
                )
                .unwrap();
            assert_eq!(out, baseline, "morsel_ops={morsel_ops} steal={steal}");
        }
    }

    #[test]
    fn unsplit_morsel_stage_costs_the_same_as_run_job() {
        // morsel_ops = MAX: one morsel per partition, each paying the full
        // launch overhead — the cost model must match run_job exactly.
        let mut cfg = ClusterConfig::local(2);
        cfg.sched = SchedConfig::static_placement();
        let c = Cluster::new(cfg);
        c.run_morsel_job(
            "m",
            vec![vec![1u64; 10], vec![1; 4]],
            |_| 1,
            |_, items, ctx| {
                ctx.charge_ops(items.len() as u64 * 100);
                Ok(items.to_vec())
            },
        )
        .unwrap();
        let d = Cluster::local(2);
        d.run_job("j", 2, |i, ctx| {
            let n = if i == 0 { 10 } else { 4 };
            ctx.charge_ops(n as u64 * 100);
            Ok(vec![1u64; n])
        })
        .unwrap();
        assert_eq!(c.clock().stages()[0].task_us, d.clock().stages()[0].task_us);
    }

    #[test]
    fn morsel_job_survives_executor_kills() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::disabled().kill_in_stage(0, "m", 1);
        let c = Cluster::new(cfg);
        let partitions: Vec<Vec<u32>> = vec![(0..10).collect(), (10..20).collect()];
        let out = c
            .run_morsel_job("m", partitions, |_| 8_000, |_, items, _| Ok(items.to_vec()))
            .unwrap();
        assert_eq!(
            out,
            vec![
                (0..10).collect::<Vec<u32>>(),
                (10..20).collect::<Vec<u32>>()
            ]
        );
        assert!(c.metrics().tasks_lost.get() >= 1, "the kill lost a result");
        assert_eq!(c.metrics().executors_lost.get(), 1);
    }

    #[test]
    fn speculation_skips_stolen_morsels() {
        // One straggler morsel (m1, the second of partition 0) under a kill
        // schedule that loses its first attempt. In the steal replay worker 1
        // finishes its tiny queue and steals m1, so the speculative pass must
        // leave it alone; with stealing off the same straggler is cloned.
        let run = |steal: bool| {
            let mut cfg = ClusterConfig::local(2);
            cfg.speculation = true;
            cfg.sched = SchedConfig {
                morsel_ops: 1,
                steal,
            };
            cfg.fault = FaultConfig::disabled().kill_in_stage(1, "spec", 1);
            let c = Cluster::new(cfg);
            let partitions: Vec<Vec<u64>> = vec![vec![1_000_000, 2_000_000], vec![1_000]];
            let out = c
                .run_morsel_job(
                    "spec",
                    partitions,
                    |_| 1,
                    |_, items, ctx| {
                        ctx.charge_ops(items.iter().sum());
                        Ok(items.to_vec())
                    },
                )
                .unwrap();
            assert_eq!(out, vec![vec![1_000_000, 2_000_000], vec![1_000]]);
            assert!(c.metrics().tasks_lost.get() >= 1, "kill must engage");
            c.metrics().speculative_launched.get()
        };
        assert!(
            run(false) >= 1,
            "static placement speculates on the straggler"
        );
        assert_eq!(run(true), 0, "a stolen morsel is never cloned");
    }

    #[test]
    fn at_virtual_time_kills_fire_at_stage_starts() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::disabled().kill_at_time(1, 1);
        let c = Cluster::new(cfg);
        // First stage starts at virtual time 0 < 1: no kill yet.
        c.run_job("first", 2, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(c.metrics().executors_lost.get(), 0);
        // Second stage starts after `first`'s work advanced the clock.
        c.run_job("second", 2, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(c.metrics().executors_lost.get(), 1);
        // The schedule is one-shot: later stages do not re-fire it.
        c.run_job("third", 2, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(c.metrics().executors_lost.get(), 1);
    }

    #[test]
    fn reset_run_state_revives_executors_and_rearms_kills() {
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::disabled().kill_in_stage(0, "work", 0);
        cfg.fault.max_executor_failures = 1;
        let c = Cluster::new(cfg);
        c.run_job("work", 2, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(c.executors().alive_count(), 1);
        c.reset_run_state();
        assert_eq!(c.executors().alive_count(), 2);
        // The same schedule fires again on the next run.
        c.run_job("work", 2, |i, _| Ok(vec![i])).unwrap();
        assert_eq!(c.metrics().executors_lost.get(), 1);
    }
}
