//! Run journal and exportable job reports — sparklet's observability layer.
//!
//! Every cluster owns a [`RunJournal`]: an append-only, sequence-numbered
//! record of scheduler and storage events (stage start/finish, task-attempt
//! launch/success/failure, cache hit/miss/eviction, shuffle read/write).
//! Timestamps are virtual: each event is stamped with the clock's
//! accumulated virtual work at the moment its stage started, and task events
//! additionally carry their own virtual durations — wall-clock times on the
//! worker pool are meaningless for the paper's figures (see [`crate::simtime`]).
//!
//! The journal is bounded ([`RunJournal::MAX_EVENTS`]); once full, further
//! events are counted but not stored, so a long-running feedback loop cannot
//! grow without bound. Aggregates never depend on the dropped tail: a
//! [`JobReport`] combines the journal with [`crate::simtime::VirtualClock`]
//! stage records and [`crate::metrics::ClusterMetrics`] counters into a
//! per-stage task-duration distribution (min/p50/max, straggler flags),
//! retry/shuffle/cache totals and user counters. Reports serialise to
//! schema-stable JSON ([`JobReport::to_json`]) and render as a terminal
//! stage table (`Display`) — a mini Spark UI for the terminal.

use crate::cluster::Cluster;
use crate::simtime::{simulate_morsels, StageRecord};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One journal entry: a global sequence number, the virtual timestamp of
/// the enclosing stage, and the event itself.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global order of the event within the run (0-based).
    pub seq: u64,
    /// Virtual-clock reading (accumulated virtual work, µs) when the
    /// event's stage started. Events inside one stage share a stamp; task
    /// events carry their own durations on top.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the journal.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A stage was submitted to the scheduler.
    StageStarted {
        /// Stage name.
        stage: String,
        /// Tasks in the stage.
        tasks: usize,
    },
    /// A stage completed (all tasks accounted for, success or not).
    StageFinished {
        /// Stage name.
        stage: String,
        /// Sum of final per-task virtual durations (µs).
        virtual_us: u64,
        /// Shuffle bytes the stage moved.
        shuffle_bytes: u64,
        /// Failed attempts across the stage.
        retries: u64,
    },
    /// A task attempt was handed to a worker.
    TaskLaunched {
        /// Stage name.
        stage: String,
        /// Task (partition) index.
        task: usize,
        /// Attempt number, 0-based.
        attempt: u32,
        /// Virtual executor the attempt ran on.
        executor: usize,
    },
    /// A task attempt succeeded.
    TaskSucceeded {
        /// Stage name.
        stage: String,
        /// Task index.
        task: usize,
        /// Attempt number.
        attempt: u32,
        /// Virtual duration of this attempt (µs).
        virtual_us: u64,
        /// Records the attempt emitted.
        records_out: u64,
    },
    /// A task attempt failed (it may be retried).
    TaskFailed {
        /// Stage name.
        stage: String,
        /// Task index.
        task: usize,
        /// Attempt number.
        attempt: u32,
        /// Virtual duration wasted by this attempt (µs).
        virtual_us: u64,
        /// The [`crate::SparkletError`] rendered to text.
        reason: String,
        /// Whether another attempt follows.
        will_retry: bool,
    },
    /// A cached partition was found in the block manager.
    CacheHit {
        /// RDD id.
        rdd: u64,
        /// Partition index.
        partition: usize,
    },
    /// A cache lookup missed (the partition recomputes from lineage).
    CacheMiss {
        /// RDD id.
        rdd: u64,
        /// Partition index.
        partition: usize,
    },
    /// A cached partition was evicted under memory pressure.
    CacheEvicted {
        /// RDD id.
        rdd: u64,
        /// Partition index.
        partition: usize,
        /// Estimated bytes released.
        bytes: usize,
    },
    /// A cache put was refused outright: the block exceeded the executor
    /// pool and the disk tier could not take it (no codec / spill disabled).
    /// The partition will recompute from lineage on every access.
    CacheSkipped {
        /// RDD id.
        rdd: u64,
        /// Partition index.
        partition: usize,
        /// Estimated size of the refused block.
        bytes: usize,
    },
    /// A payload (cache block or shuffle bucket) was serialized to an
    /// executor's spill file instead of being dropped or failing the task.
    SpillWrite {
        /// Executor whose spill file grew.
        executor: usize,
        /// Encoded bytes written.
        bytes: u64,
    },
    /// A spilled payload was read back from disk (instead of recomputing
    /// from lineage or failing a shuffle fetch).
    SpillRead {
        /// Executor whose spill file was read.
        executor: usize,
        /// Encoded bytes read.
        bytes: u64,
    },
    /// A map task registered its bucketed output with the shuffle service.
    ShuffleWrite {
        /// Shuffle id.
        shuffle: u64,
        /// Records written across all buckets.
        records: u64,
        /// Estimated serialized bytes.
        bytes: u64,
    },
    /// A reduce task fetched one bucket across all map outputs.
    ShuffleRead {
        /// Shuffle id.
        shuffle: u64,
        /// Bucket (reduce partition) index.
        bucket: usize,
        /// Records fetched.
        records: u64,
    },
    /// An executor was killed by the fault schedule, taking its cached
    /// blocks and shuffle map outputs with it.
    ExecutorLost {
        /// Executor id.
        executor: usize,
        /// Incarnation that died.
        incarnation: u32,
        /// Whether the kill exceeded the failure budget (no restart).
        blacklisted: bool,
        /// Cached blocks evicted with the executor.
        blocks_lost: usize,
        /// Shuffle map outputs invalidated with the executor.
        map_outputs_lost: u64,
    },
    /// A task attempt failed because the shuffle data it reads is gone.
    FetchFailed {
        /// Stage of the reading task.
        stage: String,
        /// Reading task index.
        task: usize,
        /// Shuffle whose map output is missing.
        shuffle: u64,
        /// Bucket the reader wanted.
        bucket: usize,
    },
    /// A lost shuffle map output was rebuilt from lineage.
    Recomputed {
        /// Shuffle id.
        shuffle: u64,
        /// Map task that was re-run.
        map_task: usize,
    },
    /// A speculative clone of a straggler finished.
    Speculative {
        /// Stage name.
        stage: String,
        /// Task index.
        task: usize,
        /// Whether the clone beat the original attempt.
        won: bool,
    },
    /// A task's result was discarded because its executor died mid-flight;
    /// the task is rescheduled on a survivor (not counted as a failure).
    TaskLost {
        /// Stage name.
        stage: String,
        /// Task index.
        task: usize,
        /// Attempt number.
        attempt: u32,
        /// The dead executor.
        executor: usize,
    },
    /// Work stealing moved morsels between workers in a morsel-driven stage.
    /// Coalesced: one event per (thief, victim) pair per stage, so volume is
    /// bounded by workers², never by morsel count.
    MorselStolen {
        /// Stage name.
        stage: String,
        /// Worker that stole.
        thief: usize,
        /// Worker whose queue was robbed.
        victim: usize,
        /// Morsels moved along this edge during the stage.
        count: u64,
    },
    /// A worker sat idle for part of a morsel-driven stage (emitted once per
    /// worker per stage, only when the idle time is non-zero).
    WorkerIdle {
        /// Stage name.
        stage: String,
        /// Worker id.
        worker: usize,
        /// Idle virtual time until the stage's makespan (µs).
        idle_us: u64,
    },
    /// A batch-path operator finished one task's compute: `chunks` chunks
    /// moved `records` records through the operator. Coalesced: one event
    /// per task, never per chunk, so journal volume stays bounded by task
    /// count even at chunk size 1.
    BatchExecuted {
        /// Stage (node) name.
        stage: String,
        /// Operator name ("map", "filter_batches", "shuffle-bucket", …).
        op: String,
        /// Chunks dispatched by this compute.
        chunks: u64,
        /// Records carried across those chunks.
        records: u64,
        /// Largest single chunk (records).
        max_chunk: u64,
    },
    /// A bound-driven pruning pass ran over one unit of work (a classify
    /// block, a detect_new round, …). Coalesced driver-side: one event per
    /// unit, never per test pair, so journal volume stays bounded however
    /// large the corpus. All pruning is lossless — these events record
    /// distance evaluations *avoided*, never results changed.
    PruneApplied {
        /// Label of the pruned unit ("classify-block", "memo", …).
        scope: String,
        /// Voronoi cells skipped wholesale by the annulus bound.
        cells_skipped: u64,
        /// Cell residents rejected by the triangle-inequality window.
        bound_rejected: u64,
        /// Distance evaluations actually performed.
        evals_done: u64,
        /// Distance evaluations avoided (bound-rejected residents plus the
        /// populations of wholesale-skipped cells, plus memo hits).
        evals_avoided: u64,
        /// Pair distances answered from the cross-call memo.
        memo_hits: u64,
    },
    /// The driver was killed at a driver-side fault point (see
    /// [`crate::FaultConfig::driver_kill`]). Fatal: the owning service drops
    /// its state and recovers from its durable checkpoint.
    DriverKilled {
        /// Global fault-point index that fired.
        point: u64,
        /// Label of the code location that hit the fault point.
        label: String,
    },
    /// An ingest micro-batch committed: detections folded into the
    /// cumulative digest and a new checkpoint generation renamed into place.
    /// Coalesced: one event per batch, never per report or per pair, so a
    /// long-running ingest stays within the journal bound.
    IngestBatchCommitted {
        /// Batch index (== quarter index for quarterly replay).
        batch: u64,
        /// Reports ingested by this batch.
        reports: u64,
        /// Candidate pairs scored (detections emitted).
        detections: u64,
        /// Detections classified duplicate.
        duplicates: u64,
        /// Failed attempts before the one that committed.
        retries: u64,
        /// Admission-gate deferrals charged before this batch started.
        deferrals: u64,
        /// Virtual latency of the committed attempt plus checkpoint write
        /// (µs), excluding backoff waits and deferrals.
        latency_us: u64,
        /// Size of the checkpoint file written at commit (bytes).
        checkpoint_bytes: u64,
    },
    /// The ingest admission gate deferred the next batch because the
    /// engine's lag exceeded its bound (backpressure). One event per wait.
    IngestDeferred {
        /// Batch whose admission was deferred.
        batch: u64,
        /// Spill-resident bytes observed at the gate.
        resident_bytes: u64,
        /// In-flight (previous-batch) pair count observed at the gate.
        lagged_pairs: u64,
        /// Virtual time charged for the wait (µs).
        waited_us: u64,
    },
    /// A poison batch exhausted `max_batch_retries`, was dumped to the
    /// quarantine file and skipped so the service keeps making progress.
    IngestQuarantined {
        /// Batch index that was quarantined.
        batch: u64,
        /// Reports the batch carried.
        reports: u64,
        /// Attempts made (including the first).
        attempts: u64,
        /// Last failure, human-readable.
        reason: String,
    },
    /// An ingest service recovered from a durable checkpoint after a driver
    /// crash (or plain restart).
    IngestRecovered {
        /// Checkpoint generation that was loaded.
        generation: u64,
        /// First batch to (re)run after recovery.
        batch_high_water: u64,
        /// Whether the newest generation was corrupt and recovery fell back
        /// to an older one.
        fallback: bool,
    },
    /// A serve micro-batch was dispatched and answered. Coalesced: one
    /// event per admitted batch, never per request, so an open-loop load of
    /// millions of requests stays within the journal bound.
    ServeBatchExecuted {
        /// Batch index within the serve run.
        batch: u64,
        /// Requests coalesced into this batch.
        requests: u64,
        /// Requests still queued when this batch dispatched.
        queue_depth: u64,
        /// Signal-memo lookups issued by this batch.
        memo_lookups: u64,
        /// Signal-memo lookups answered from the memo.
        memo_hits: u64,
        /// Virtual service time for the batch (µs).
        service_us: u64,
        /// Worst request latency in the batch: dispatch wait plus service
        /// time, measured from the earliest admitted arrival (µs).
        latency_us: u64,
    },
}

impl EventKind {
    /// Short kind tag, used for event-count aggregation.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::StageStarted { .. } => "stage_started",
            EventKind::StageFinished { .. } => "stage_finished",
            EventKind::TaskLaunched { .. } => "task_launched",
            EventKind::TaskSucceeded { .. } => "task_succeeded",
            EventKind::TaskFailed { .. } => "task_failed",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheEvicted { .. } => "cache_evicted",
            EventKind::CacheSkipped { .. } => "cache_skipped",
            EventKind::SpillWrite { .. } => "spill_write",
            EventKind::SpillRead { .. } => "spill_read",
            EventKind::ShuffleWrite { .. } => "shuffle_write",
            EventKind::ShuffleRead { .. } => "shuffle_read",
            EventKind::ExecutorLost { .. } => "executor_lost",
            EventKind::FetchFailed { .. } => "fetch_failed",
            EventKind::Recomputed { .. } => "recomputed",
            EventKind::Speculative { .. } => "speculative",
            EventKind::TaskLost { .. } => "task_lost",
            EventKind::MorselStolen { .. } => "morsel_stolen",
            EventKind::WorkerIdle { .. } => "worker_idle",
            EventKind::BatchExecuted { .. } => "batch_executed",
            EventKind::PruneApplied { .. } => "prune_applied",
            EventKind::DriverKilled { .. } => "driver_killed",
            EventKind::IngestBatchCommitted { .. } => "ingest_batch_committed",
            EventKind::IngestDeferred { .. } => "ingest_deferred",
            EventKind::IngestQuarantined { .. } => "ingest_quarantined",
            EventKind::IngestRecovered { .. } => "ingest_recovered",
            EventKind::ServeBatchExecuted { .. } => "serve_batch_executed",
        }
    }
}

struct JournalInner {
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
    /// Virtual work (µs) recorded by completed stages so far — the stamp
    /// given to subsequent events.
    virtual_now_us: AtomicU64,
    dropped: AtomicU64,
}

/// Shared, bounded event journal. Cloning shares the underlying buffer
/// (`Arc` semantics); recording is lock-per-event and cheap enough for the
/// engine's task granularity (tasks, not records).
#[derive(Clone)]
pub struct RunJournal {
    inner: Arc<JournalInner>,
}

impl Default for RunJournal {
    fn default() -> Self {
        RunJournal::new()
    }
}

impl RunJournal {
    /// Events retained before the journal starts counting instead of
    /// storing. Bounds driver memory for endless feedback loops.
    pub const MAX_EVENTS: usize = 100_000;

    /// Fresh empty journal.
    pub fn new() -> Self {
        RunJournal {
            inner: Arc::new(JournalInner {
                events: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                virtual_now_us: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Append an event (drops it, counted, once [`Self::MAX_EVENTS`] is
    /// reached).
    pub fn record(&self, kind: EventKind) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = self.inner.virtual_now_us.load(Ordering::Relaxed);
        let mut events = self.inner.events.lock();
        if events.len() >= Self::MAX_EVENTS {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event { seq, at_us, kind });
    }

    /// Advance the virtual stamp by `us` (called by the scheduler when a
    /// stage's cost is recorded).
    pub(crate) fn advance(&self, us: u64) {
        self.inner.virtual_now_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Current virtual stamp (accumulated stage work, µs). The scheduler's
    /// `AtVirtualTime` kill triggers compare against this at stage starts.
    pub fn now_us(&self) -> u64 {
        self.inner.virtual_now_us.load(Ordering::Relaxed)
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events counted but not stored (journal full).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of all stored events, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Drop all events and reset the sequence and virtual stamp (between
    /// experiment configurations).
    pub fn clear(&self) {
        self.inner.events.lock().clear();
        self.inner.seq.store(0, Ordering::Relaxed);
        self.inner.virtual_now_us.store(0, Ordering::Relaxed);
        self.inner.dropped.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunJournal")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Aggregated view of one stage in a [`JobReport`].
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Tasks in the stage.
    pub tasks: usize,
    /// Task attempts launched (tasks + retries).
    pub attempts: u64,
    /// Failed attempts.
    pub retries: u64,
    /// Smallest final task duration (µs).
    pub min_task_us: u64,
    /// Median final task duration (µs).
    pub p50_task_us: u64,
    /// Largest final task duration (µs).
    pub max_task_us: u64,
    /// Sum of final task durations (µs).
    pub total_task_us: u64,
    /// Shuffle bytes the stage moved.
    pub shuffle_bytes: u64,
    /// Straggler flag: the slowest task took more than twice the median.
    pub straggler: bool,
}

impl StageReport {
    fn from_record(r: &StageRecord) -> Self {
        let mut sorted = r.task_us.clone();
        sorted.sort_unstable();
        let min = sorted.first().copied().unwrap_or(0);
        let max = sorted.last().copied().unwrap_or(0);
        let p50 = if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() - 1) / 2]
        };
        StageReport {
            name: r.name.clone(),
            tasks: r.task_us.len(),
            attempts: r.task_us.len() as u64 + r.retries,
            retries: r.retries,
            min_task_us: min,
            p50_task_us: p50,
            max_task_us: max,
            total_task_us: sorted.iter().sum(),
            shuffle_bytes: r.shuffle_bytes,
            straggler: p50 > 0 && max > 2 * p50,
        }
    }
}

/// One recorded task-attempt failure (from the journal).
#[derive(Debug, Clone)]
pub struct FailureLine {
    /// Stage name.
    pub stage: String,
    /// Task index.
    pub task: usize,
    /// Attempt number.
    pub attempt: u32,
    /// Failure reason ([`crate::SparkletError`] text).
    pub reason: String,
}

/// Engine-wide counter totals captured into a [`JobReport`].
#[derive(Debug, Clone, Default)]
pub struct ReportTotals {
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Task attempts launched.
    pub tasks_launched: u64,
    /// Successful attempts.
    pub tasks_succeeded: u64,
    /// Failed attempts.
    pub tasks_failed: u64,
    /// Failures caused by the modelled memory budget.
    pub memory_kills: u64,
    /// Records written to the shuffle service.
    pub shuffle_records_written: u64,
    /// Estimated shuffle bytes written.
    pub shuffle_bytes_written: u64,
    /// Records read back from the shuffle service.
    pub shuffle_records_read: u64,
    /// Block-manager hits.
    pub cache_hits: u64,
    /// Block-manager misses.
    pub cache_misses: u64,
    /// Blocks evicted under memory pressure.
    pub cache_evictions: u64,
    /// Journal events recorded (stored + dropped).
    pub events: u64,
    /// Journal events dropped because the buffer was full.
    pub events_dropped: u64,
}

/// Failure-recovery totals captured into a [`JobReport`] — what the run
/// survived and what that survival cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Executors killed by the fault schedule.
    pub executors_lost: u64,
    /// Executors blacklisted after exceeding the failure budget.
    pub executors_blacklisted: u64,
    /// Reduce-side fetches that found their map outputs gone.
    pub fetch_failures: u64,
    /// Map tasks re-run from lineage to rebuild lost shuffle outputs.
    pub recomputed_map_tasks: u64,
    /// In-flight results discarded with their executor and rescheduled.
    pub tasks_lost: u64,
    /// Speculative clones launched for stragglers.
    pub speculative_launched: u64,
    /// Speculative clones that beat the original.
    pub speculative_wins: u64,
}

impl RecoveryReport {
    /// Did any recovery machinery engage during the run?
    pub fn any(&self) -> bool {
        *self != RecoveryReport::default()
    }
}

/// Morsel-scheduling aggregates captured into a [`JobReport`]: every
/// morsel-driven stage replayed (see [`simulate_morsels`]) on the cluster's
/// own slot count, summed into a per-worker utilization table.
#[derive(Debug, Clone, Default)]
pub struct SchedReport {
    /// Task slots the replay used (the cluster's own topology).
    pub workers: usize,
    /// Stages that ran morsel-driven.
    pub morsel_stages: usize,
    /// Morsels executed across those stages.
    pub morsels: u64,
    /// Morsels that ran away from their home worker.
    pub steals: u64,
    /// Sum of morsel-stage makespans at `workers` slots (µs).
    pub makespan_us: u64,
    /// Per-worker totals across all morsel stages, indexed by worker id.
    pub per_worker: Vec<WorkerUtilization>,
    /// Σ busy / (workers × Σ makespans) — 1.0 means no worker ever idled.
    pub utilization: f64,
    /// Max per-worker busy time over mean busy time; 1.0 is perfectly even.
    pub imbalance: f64,
}

/// One worker's row in the [`SchedReport`] utilization table.
#[derive(Debug, Clone, Default)]
pub struct WorkerUtilization {
    /// Worker (slot) id.
    pub worker: usize,
    /// Busy virtual time across all morsel stages (µs).
    pub busy_us: u64,
    /// Morsels the worker executed (own + stolen).
    pub morsels: u64,
    /// Morsels the worker stole from other queues.
    pub steals: u64,
}

impl SchedReport {
    fn capture(cluster: &Cluster) -> Self {
        let workers = cluster.config().total_slots();
        let mut report = SchedReport {
            workers,
            ..SchedReport::default()
        };
        let mut busy = vec![0u64; workers];
        let mut morsels_run = vec![0u64; workers];
        let mut steals_by = vec![0u64; workers];
        for record in cluster.clock().stages() {
            let Some(info) = &record.morsels else {
                continue;
            };
            let sim = simulate_morsels(&record.task_us, &info.partition_of, workers, info.steal);
            report.morsel_stages += 1;
            report.morsels += record.task_us.len() as u64;
            report.steals += sim.stolen_count();
            report.makespan_us += sim.makespan_us;
            for w in 0..workers {
                busy[w] += sim.busy_us[w];
                morsels_run[w] += sim.morsels_run[w];
            }
            for &(thief, _, n) in &sim.steals {
                steals_by[thief] += n;
            }
        }
        if report.morsel_stages == 0 {
            return report;
        }
        let total_busy: u64 = busy.iter().sum();
        let denom = workers as u64 * report.makespan_us;
        report.utilization = total_busy as f64 / denom.max(1) as f64;
        let mean_busy = total_busy as f64 / workers as f64;
        let max_busy = busy.iter().copied().max().unwrap_or(0);
        report.imbalance = if mean_busy > 0.0 {
            max_busy as f64 / mean_busy
        } else {
            1.0
        };
        report.per_worker = (0..workers)
            .map(|w| WorkerUtilization {
                worker: w,
                busy_us: busy[w],
                morsels: morsels_run[w],
                steals: steals_by[w],
            })
            .collect();
        report
    }
}

/// Chunked-execution aggregates captured into a [`JobReport`]: one row per
/// (stage, operator) that ran through the batch path, plus run-wide totals
/// and the dispatch overhead chunking saved against a row-at-a-time
/// execution of the same record volume.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Chunks dispatched across all batch stages.
    pub chunks: u64,
    /// Records carried through the batch path.
    pub records: u64,
    /// Virtual time saved versus dispatching every record as its own chunk:
    /// `(records − chunks) × chunk_dispatch_ns / 1000` (µs) at the
    /// cluster's own [`crate::CostModelConfig::chunk_dispatch_ns`].
    pub dispatch_saved_us: u64,
    /// Per-(stage, operator) rows in first-seen order.
    pub stages: Vec<BatchStageReport>,
}

/// One (stage, operator) row in the [`BatchReport`].
#[derive(Debug, Clone, Default)]
pub struct BatchStageReport {
    /// Stage name the chunks ran under.
    pub stage: String,
    /// Operator name ("map", "filter_batches", "shuffle-bucket", …).
    pub op: String,
    /// Chunks dispatched.
    pub chunks: u64,
    /// Records carried.
    pub records: u64,
    /// Median over tasks of the task's mean records-per-chunk.
    pub p50_chunk_records: u64,
    /// Largest single chunk observed (records).
    pub max_chunk_records: u64,
}

impl BatchReport {
    fn capture(cluster: &Cluster) -> Self {
        use std::collections::HashMap;
        let mut order: Vec<(String, String)> = Vec::new();
        let mut rows: HashMap<(String, String), BatchRow> = HashMap::new();
        for ev in cluster.journal().events() {
            let EventKind::BatchExecuted {
                stage,
                op,
                chunks,
                records,
                max_chunk,
            } = ev.kind
            else {
                continue;
            };
            let key = (stage, op);
            let entry = rows.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, 0, 0, Vec::new())
            });
            entry.0 += chunks;
            entry.1 += records;
            entry.2 = entry.2.max(max_chunk);
            if let Some(mean) = records.checked_div(chunks) {
                entry.3.push(mean);
            }
        }
        let mut report = drain_batch_rows(order, rows);
        report.dispatch_saved_us = report.records.saturating_sub(report.chunks)
            * cluster.config().cost.chunk_dispatch_ns
            / 1000;
        report
    }

    /// Did anything run through the batch path?
    pub fn any(&self) -> bool {
        self.chunks > 0
    }
}

/// chunks, records, max chunk, per-task mean chunk sizes.
type BatchRow = (u64, u64, u64, Vec<u64>);

/// Fold the accumulated per-(stage, op) rows into a [`BatchReport`] in
/// first-seen order. A key present in `order` but missing from `rows`
/// (duplicate order entries from a journal inconsistency) used to panic and
/// poison the whole report; it now yields a zeroed warning row so the rest
/// of the report still renders.
fn drain_batch_rows(
    order: Vec<(String, String)>,
    mut rows: std::collections::HashMap<(String, String), BatchRow>,
) -> BatchReport {
    let mut report = BatchReport::default();
    for key in order {
        let Some((chunks, records, max_chunk, mut avgs)) = rows.remove(&key) else {
            report.stages.push(BatchStageReport {
                stage: key.0,
                op: format!("{} [warning: journal row missing]", key.1),
                ..BatchStageReport::default()
            });
            continue;
        };
        avgs.sort_unstable();
        let p50 = if avgs.is_empty() {
            0
        } else {
            avgs[(avgs.len() - 1) / 2]
        };
        report.chunks += chunks;
        report.records += records;
        report.stages.push(BatchStageReport {
            stage: key.0,
            op: key.1,
            chunks,
            records,
            p50_chunk_records: p50,
            max_chunk_records: max_chunk,
        });
    }
    report
}

/// Out-of-core aggregates captured into a [`JobReport`]: what the disk tier
/// absorbed, what it handed back, and how close each executor came to its
/// memory budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Bytes serialized to spill files (cache blocks + shuffle buckets).
    pub bytes_spilled: u64,
    /// Bytes read back and deserialized from spill files.
    pub bytes_read_back: u64,
    /// Spill files created (one per executor incarnation that spilled).
    pub spill_files: u64,
    /// Cache blocks that went to disk instead of being dropped.
    pub blocks_spilled: u64,
    /// Shuffle buckets written to disk under memory pressure.
    pub buckets_spilled: u64,
    /// Cache puts refused outright (oversized, no codec / spill disabled).
    pub cache_skipped: u64,
    /// Peak resident bytes per executor (cache + shuffle pools jointly).
    pub peak_resident: Vec<u64>,
}

impl SpillReport {
    fn capture(cluster: &Cluster) -> Self {
        let m = cluster.metrics();
        SpillReport {
            bytes_spilled: m.spill_bytes_written.get(),
            bytes_read_back: m.spill_bytes_read.get(),
            spill_files: m.spill_files_created.get(),
            blocks_spilled: m.blocks_spilled.get(),
            buckets_spilled: m.buckets_spilled.get(),
            cache_skipped: m.cache_skipped.get(),
            peak_resident: cluster.spill().peak_resident(),
        }
    }

    /// Did the disk tier (or the skip path) engage during the run?
    pub fn any(&self) -> bool {
        self.bytes_spilled > 0 || self.bytes_read_back > 0 || self.cache_skipped > 0
    }
}

/// Bound-driven pruning aggregates captured into a [`JobReport`]: summed
/// over every [`EventKind::PruneApplied`] event in the journal. Pruning is
/// lossless by construction, so this section describes work *saved*, never
/// results changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Pruning passes journaled (classify blocks, memo lookups, …).
    pub passes: u64,
    /// Voronoi cells skipped wholesale by the annulus bound.
    pub cells_skipped: u64,
    /// Cell residents rejected by the triangle-inequality window.
    pub bound_rejected: u64,
    /// Distance evaluations actually performed.
    pub evals_done: u64,
    /// Distance evaluations avoided.
    pub evals_avoided: u64,
    /// Pair distances answered from the cross-call memo.
    pub memo_hits: u64,
}

impl PruneReport {
    fn capture(cluster: &Cluster) -> Self {
        let mut report = PruneReport::default();
        for ev in cluster.journal().events() {
            let EventKind::PruneApplied {
                cells_skipped,
                bound_rejected,
                evals_done,
                evals_avoided,
                memo_hits,
                ..
            } = ev.kind
            else {
                continue;
            };
            report.passes += 1;
            report.cells_skipped += cells_skipped;
            report.bound_rejected += bound_rejected;
            report.evals_done += evals_done;
            report.evals_avoided += evals_avoided;
            report.memo_hits += memo_hits;
        }
        report
    }

    /// Did any pruning pass run?
    pub fn any(&self) -> bool {
        self.passes > 0
    }

    /// Fraction of would-be distance evaluations avoided, in `[0, 1]`.
    pub fn avoided_fraction(&self) -> f64 {
        let would_be = self.evals_done + self.evals_avoided;
        if would_be == 0 {
            0.0
        } else {
            self.evals_avoided as f64 / would_be as f64
        }
    }
}

/// One committed micro-batch in the [`IngestReport`], folded from an
/// [`EventKind::IngestBatchCommitted`] journal event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestBatchRow {
    /// Batch index (== quarter index for quarterly replay).
    pub batch: u64,
    /// Reports ingested by this batch.
    pub reports: u64,
    /// Candidate pairs scored (detections emitted).
    pub detections: u64,
    /// Detections classified duplicate.
    pub duplicates: u64,
    /// Failed attempts before the one that committed.
    pub retries: u64,
    /// Admission-gate deferrals before this batch started.
    pub deferrals: u64,
    /// Virtual latency of the committed attempt plus checkpoint write (µs).
    pub latency_us: u64,
    /// Size of the checkpoint generation written at commit (bytes).
    pub checkpoint_bytes: u64,
}

/// Streaming-ingest aggregates captured into a [`JobReport`]: per-batch
/// latency/retry rows plus quarantine, backpressure and recovery totals,
/// folded from the coalesced ingest journal events (one per batch, so the
/// section stays bounded however long the service runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Batches committed, in commit order.
    pub batches: Vec<IngestBatchRow>,
    /// Batches quarantined after exhausting their retry budget.
    pub batches_quarantined: u64,
    /// Failed attempts summed over committed batches.
    pub batch_retries: u64,
    /// Admission-gate deferrals (backpressure waits).
    pub deferrals: u64,
    /// Checkpoint recoveries (restarts resumed from a checkpoint).
    pub recoveries: u64,
    /// Recoveries that fell back past a corrupt newest generation.
    pub checkpoint_fallbacks: u64,
    /// Driver kills journaled by fault points.
    pub driver_kills: u64,
    /// Checkpoint bytes written, summed over commits.
    pub checkpoint_bytes: u64,
}

impl IngestReport {
    fn capture(cluster: &Cluster) -> Self {
        let mut report = IngestReport::default();
        for ev in cluster.journal().events() {
            match ev.kind {
                EventKind::IngestBatchCommitted {
                    batch,
                    reports,
                    detections,
                    duplicates,
                    retries,
                    deferrals,
                    latency_us,
                    checkpoint_bytes,
                } => {
                    report.batch_retries += retries;
                    report.checkpoint_bytes += checkpoint_bytes;
                    report.batches.push(IngestBatchRow {
                        batch,
                        reports,
                        detections,
                        duplicates,
                        retries,
                        deferrals,
                        latency_us,
                        checkpoint_bytes,
                    });
                }
                EventKind::IngestDeferred { .. } => report.deferrals += 1,
                EventKind::IngestQuarantined { .. } => report.batches_quarantined += 1,
                EventKind::IngestRecovered { fallback, .. } => {
                    report.recoveries += 1;
                    if fallback {
                        report.checkpoint_fallbacks += 1;
                    }
                }
                EventKind::DriverKilled { .. } => report.driver_kills += 1,
                _ => {}
            }
        }
        report
    }

    /// Did an ingest service run on this cluster?
    pub fn any(&self) -> bool {
        !self.batches.is_empty()
            || self.batches_quarantined > 0
            || self.recoveries > 0
            || self.driver_kills > 0
    }
}

/// Power-of-two histogram buckets in a [`ServeReport`]: bucket `i` counts
/// batches of `2^i` requests or fewer (but more than `2^(i-1)`), with the
/// last bucket absorbing everything larger.
pub const SERVE_HIST_BUCKETS: usize = 11;

/// Serving aggregates captured into a [`JobReport`], folded from the
/// coalesced [`EventKind::ServeBatchExecuted`] journal events (one per
/// micro-batch, so the section stays bounded however long the open-loop
/// load runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Requests answered, summed over batches.
    pub requests: u64,
    /// Largest queue depth observed at any dispatch.
    pub max_queue_depth: u64,
    /// Batch-size histogram: bucket `i` counts batches of at most `2^i`
    /// requests (last bucket open-ended).
    pub batch_size_hist: [u64; SERVE_HIST_BUCKETS],
    /// Signal-memo lookups issued.
    pub memo_lookups: u64,
    /// Signal-memo lookups answered from the memo.
    pub memo_hits: u64,
    /// Virtual service time summed over batches (µs).
    pub service_us: u64,
}

impl ServeReport {
    fn capture(cluster: &Cluster) -> Self {
        let mut report = ServeReport::default();
        for ev in cluster.journal().events() {
            if let EventKind::ServeBatchExecuted {
                requests,
                queue_depth,
                memo_lookups,
                memo_hits,
                service_us,
                ..
            } = ev.kind
            {
                report.batches += 1;
                report.requests += requests;
                report.max_queue_depth = report.max_queue_depth.max(queue_depth);
                let bucket = (64 - requests.max(1).next_power_of_two().leading_zeros() - 1)
                    .min(SERVE_HIST_BUCKETS as u32 - 1);
                report.batch_size_hist[bucket as usize] += 1;
                report.memo_lookups += memo_lookups;
                report.memo_hits += memo_hits;
                report.service_us += service_us;
            }
        }
        report
    }

    /// Did a serve service run on this cluster?
    pub fn any(&self) -> bool {
        self.batches > 0
    }

    /// Fraction of signal-memo lookups answered from the memo, in `[0, 1]`.
    pub fn memo_hit_rate(&self) -> f64 {
        if self.memo_lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.memo_lookups as f64
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Maximum failure lines embedded in a report (the journal may hold more).
/// Cap on the failure lines a [`JobReport`] retains (fault-injection runs
/// can fail thousands of attempts; the report keeps the first few).
pub const MAX_REPORT_FAILURES: usize = 32;

/// A full, serialisable run report: stage timeline, attempt/retry counts,
/// shuffle and cache statistics, failures and user counters.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// JSON schema version (bump when the shape changes).
    pub schema_version: u32,
    /// Per-stage aggregates in execution order.
    pub stages: Vec<StageReport>,
    /// Engine counter totals.
    pub totals: ReportTotals,
    /// Failure-recovery totals: executor losses, fetch failures, lineage
    /// recomputation and speculation.
    pub recovery: RecoveryReport,
    /// Morsel-scheduling aggregates: steal counts and the per-worker
    /// utilization table (empty when no stage ran morsel-driven).
    pub sched: SchedReport,
    /// Chunked-execution aggregates: chunks/records per stage-operator and
    /// the dispatch overhead saved (empty when nothing ran batch-path).
    pub batch: BatchReport,
    /// Out-of-core aggregates: spill volume both ways, file counts and the
    /// per-executor peak-resident high-water marks (empty when the run
    /// never touched the disk tier).
    pub spill: SpillReport,
    /// Bound-driven pruning aggregates: cells skipped, residents rejected
    /// by the triangle-inequality window, distance evaluations avoided and
    /// memo hits (empty when no pruning pass was journaled).
    pub prune: PruneReport,
    /// Streaming-ingest aggregates: per-batch latency/retry/checkpoint rows
    /// plus quarantine, backpressure and recovery totals (empty when no
    /// ingest service ran).
    pub ingest: IngestReport,
    /// Serving aggregates: micro-batch counts, queue depth, batch-size
    /// histogram and signal-memo hit rate (empty when no serve service ran).
    pub serve: ServeReport,
    /// First [`MAX_REPORT_FAILURES`] task-attempt failures, in order.
    pub failures: Vec<FailureLine>,
    /// User counters, sorted by name.
    pub user_counters: Vec<(String, u64)>,
    /// Virtual elapsed time on the cluster's own topology (µs).
    pub virtual_us: u64,
    /// Parallelism-independent total work (µs).
    pub total_work_us: u64,
}

impl JobReport {
    /// Current JSON schema version (2 added the `recovery` section, 3 the
    /// `sched` section, 4 the `batch` section, 5 the `spill` section, 6 the
    /// `prune` section, 7 the `ingest` section, 8 the `serve` section).
    pub const SCHEMA_VERSION: u32 = 8;

    /// Snapshot a cluster's clock, metrics and journal into a report.
    pub fn capture(cluster: &Cluster) -> Self {
        let m = cluster.metrics();
        let journal = cluster.journal();
        let mut failures = Vec::new();
        for ev in journal.events() {
            if let EventKind::TaskFailed {
                stage,
                task,
                attempt,
                reason,
                ..
            } = ev.kind
            {
                if failures.len() < MAX_REPORT_FAILURES {
                    failures.push(FailureLine {
                        stage,
                        task,
                        attempt,
                        reason,
                    });
                }
            }
        }
        JobReport {
            schema_version: Self::SCHEMA_VERSION,
            stages: cluster
                .clock()
                .stages()
                .iter()
                .map(StageReport::from_record)
                .collect(),
            totals: ReportTotals {
                jobs_submitted: m.jobs_submitted.get(),
                tasks_launched: m.tasks_launched.get(),
                tasks_succeeded: m.tasks_succeeded.get(),
                tasks_failed: m.tasks_failed.get(),
                memory_kills: m.memory_kills.get(),
                shuffle_records_written: m.shuffle_records_written.get(),
                shuffle_bytes_written: m.shuffle_bytes_written.get(),
                shuffle_records_read: m.shuffle_records_read.get(),
                cache_hits: m.cache_hits.get(),
                cache_misses: m.cache_misses.get(),
                cache_evictions: m.cache_evictions.get(),
                events: journal.len() as u64 + journal.dropped(),
                events_dropped: journal.dropped(),
            },
            sched: SchedReport::capture(cluster),
            batch: BatchReport::capture(cluster),
            spill: SpillReport::capture(cluster),
            prune: PruneReport::capture(cluster),
            ingest: IngestReport::capture(cluster),
            serve: ServeReport::capture(cluster),
            recovery: RecoveryReport {
                executors_lost: m.executors_lost.get(),
                executors_blacklisted: m.executors_blacklisted.get(),
                fetch_failures: m.fetch_failures.get(),
                recomputed_map_tasks: m.recomputed_tasks.get(),
                tasks_lost: m.tasks_lost.get(),
                speculative_launched: m.speculative_launched.get(),
                speculative_wins: m.speculative_wins.get(),
            },
            failures,
            user_counters: m.user_counters(),
            virtual_us: cluster.virtual_elapsed().us,
            total_work_us: cluster.clock().total_work().us,
        }
    }

    /// Stages flagged as stragglers.
    pub fn straggler_stages(&self) -> impl Iterator<Item = &StageReport> {
        self.stages.iter().filter(|s| s.straggler)
    }

    /// Serialise to schema-stable JSON (hand-rolled: the workspace vendors
    /// no `serde_json`). Field order is fixed; strings are escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 256 * self.stages.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"virtual_us\": {},\n", self.virtual_us));
        out.push_str(&format!("  \"total_work_us\": {},\n", self.total_work_us));
        let t = &self.totals;
        out.push_str("  \"totals\": {");
        out.push_str(&format!(
            "\"jobs_submitted\": {}, \"tasks_launched\": {}, \"tasks_succeeded\": {}, \
             \"tasks_failed\": {}, \"memory_kills\": {}, \"shuffle_records_written\": {}, \
             \"shuffle_bytes_written\": {}, \"shuffle_records_read\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_evictions\": {}, \"events\": {}, \
             \"events_dropped\": {}",
            t.jobs_submitted,
            t.tasks_launched,
            t.tasks_succeeded,
            t.tasks_failed,
            t.memory_kills,
            t.shuffle_records_written,
            t.shuffle_bytes_written,
            t.shuffle_records_read,
            t.cache_hits,
            t.cache_misses,
            t.cache_evictions,
            t.events,
            t.events_dropped,
        ));
        out.push_str("},\n");
        let r = &self.recovery;
        out.push_str("  \"recovery\": {");
        out.push_str(&format!(
            "\"executors_lost\": {}, \"executors_blacklisted\": {}, \"fetch_failures\": {}, \
             \"recomputed_map_tasks\": {}, \"tasks_lost\": {}, \"speculative_launched\": {}, \
             \"speculative_wins\": {}",
            r.executors_lost,
            r.executors_blacklisted,
            r.fetch_failures,
            r.recomputed_map_tasks,
            r.tasks_lost,
            r.speculative_launched,
            r.speculative_wins,
        ));
        out.push_str("},\n");
        let sc = &self.sched;
        out.push_str("  \"sched\": {");
        out.push_str(&format!(
            "\"workers\": {}, \"morsel_stages\": {}, \"morsels\": {}, \"steals\": {}, \
             \"makespan_us\": {}, \"utilization\": {:.4}, \"imbalance\": {:.4}, \
             \"per_worker\": [",
            sc.workers,
            sc.morsel_stages,
            sc.morsels,
            sc.steals,
            sc.makespan_us,
            sc.utilization,
            sc.imbalance,
        ));
        for (i, w) in sc.per_worker.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"worker\": {}, \"busy_us\": {}, \"morsels\": {}, \"steals\": {}}}",
                w.worker, w.busy_us, w.morsels, w.steals
            ));
        }
        out.push_str("]},\n");
        let b = &self.batch;
        out.push_str("  \"batch\": {");
        out.push_str(&format!(
            "\"chunks\": {}, \"records\": {}, \"dispatch_saved_us\": {}, \"stages\": [",
            b.chunks, b.records, b.dispatch_saved_us,
        ));
        for (i, s) in b.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"stage\": {}, \"op\": {}, \"chunks\": {}, \"records\": {}, \
                 \"p50_chunk_records\": {}, \"max_chunk_records\": {}}}",
                json_string(&s.stage),
                json_string(&s.op),
                s.chunks,
                s.records,
                s.p50_chunk_records,
                s.max_chunk_records,
            ));
        }
        out.push_str("]},\n");
        let sp = &self.spill;
        out.push_str("  \"spill\": {");
        out.push_str(&format!(
            "\"bytes_spilled\": {}, \"bytes_read_back\": {}, \"spill_files\": {}, \
             \"blocks_spilled\": {}, \"buckets_spilled\": {}, \"cache_skipped\": {}, \
             \"peak_resident\": [",
            sp.bytes_spilled,
            sp.bytes_read_back,
            sp.spill_files,
            sp.blocks_spilled,
            sp.buckets_spilled,
            sp.cache_skipped,
        ));
        for (i, p) in sp.peak_resident.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&p.to_string());
        }
        out.push_str("]},\n");
        let pr = &self.prune;
        out.push_str("  \"prune\": {");
        out.push_str(&format!(
            "\"passes\": {}, \"cells_skipped\": {}, \"bound_rejected\": {}, \
             \"evals_done\": {}, \"evals_avoided\": {}, \"memo_hits\": {}, \
             \"avoided_fraction\": {:.4}",
            pr.passes,
            pr.cells_skipped,
            pr.bound_rejected,
            pr.evals_done,
            pr.evals_avoided,
            pr.memo_hits,
            pr.avoided_fraction(),
        ));
        out.push_str("},\n");
        let ing = &self.ingest;
        out.push_str("  \"ingest\": {");
        out.push_str(&format!(
            "\"batches_committed\": {}, \"batches_quarantined\": {}, \"batch_retries\": {}, \
             \"deferrals\": {}, \"recoveries\": {}, \"checkpoint_fallbacks\": {}, \
             \"driver_kills\": {}, \"checkpoint_bytes\": {}, \"batches\": [",
            ing.batches.len(),
            ing.batches_quarantined,
            ing.batch_retries,
            ing.deferrals,
            ing.recoveries,
            ing.checkpoint_fallbacks,
            ing.driver_kills,
            ing.checkpoint_bytes,
        ));
        for (i, b) in ing.batches.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"batch\": {}, \"reports\": {}, \"detections\": {}, \"duplicates\": {}, \
                 \"retries\": {}, \"deferrals\": {}, \"latency_us\": {}, \
                 \"checkpoint_bytes\": {}}}",
                b.batch,
                b.reports,
                b.detections,
                b.duplicates,
                b.retries,
                b.deferrals,
                b.latency_us,
                b.checkpoint_bytes,
            ));
        }
        out.push_str("]},\n");
        let sv = &self.serve;
        out.push_str("  \"serve\": {");
        out.push_str(&format!(
            "\"batches\": {}, \"requests\": {}, \"max_queue_depth\": {}, \
             \"memo_lookups\": {}, \"memo_hits\": {}, \"memo_hit_rate\": {:.4}, \
             \"mean_batch_size\": {:.2}, \"service_us\": {}, \"batch_size_hist\": [",
            sv.batches,
            sv.requests,
            sv.max_queue_depth,
            sv.memo_lookups,
            sv.memo_hits,
            sv.memo_hit_rate(),
            sv.mean_batch_size(),
            sv.service_us,
        ));
        for (i, count) in sv.batch_size_hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&count.to_string());
        }
        out.push_str("]},\n");
        out.push_str("  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"name\": {}, \"tasks\": {}, \"attempts\": {}, \"retries\": {}, \
                 \"min_task_us\": {}, \"p50_task_us\": {}, \"max_task_us\": {}, \
                 \"total_task_us\": {}, \"shuffle_bytes\": {}, \"straggler\": {}",
                json_string(&s.name),
                s.tasks,
                s.attempts,
                s.retries,
                s.min_task_us,
                s.p50_task_us,
                s.max_task_us,
                s.total_task_us,
                s.shuffle_bytes,
                s.straggler,
            ));
            out.push('}');
        }
        if !self.stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"failures\": [");
        for (i, fl) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"stage\": {}, \"task\": {}, \"attempt\": {}, \"reason\": {}",
                json_string(&fl.stage),
                fl.task,
                fl.attempt,
                json_string(&fl.reason),
            ));
            out.push('}');
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"user_counters\": {");
        for (i, (name, value)) in self.user_counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(name), value));
        }
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run journal: {} stages, {} tasks ({} retries, {} failed attempts), \
             virtual {:.2}s (total work {:.2}s), {} events{}",
            self.stages.len(),
            self.stages.iter().map(|s| s.tasks).sum::<usize>(),
            self.totals.tasks_failed.saturating_sub(0),
            self.totals.tasks_failed,
            self.virtual_us as f64 / 1e6,
            self.total_work_us as f64 / 1e6,
            self.totals.events,
            if self.totals.events_dropped > 0 {
                format!(" ({} dropped)", self.totals.events_dropped)
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "{:<40} {:>5} {:>4} {:>9} {:>9} {:>9} {:>11} {:>8}",
            "stage", "tasks", "try", "min(ms)", "p50(ms)", "max(ms)", "shuffle(B)", "flags"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<40} {:>5} {:>4} {:>9.1} {:>9.1} {:>9.1} {:>11} {:>8}",
                truncate_name(&s.name, 40),
                s.tasks,
                s.attempts,
                s.min_task_us as f64 / 1e3,
                s.p50_task_us as f64 / 1e3,
                s.max_task_us as f64 / 1e3,
                s.shuffle_bytes,
                if s.straggler { "STRAGGLE" } else { "" }
            )?;
        }
        writeln!(
            f,
            "cache: {} hits / {} misses / {} evictions   shuffle: {} B written, {} records read",
            self.totals.cache_hits,
            self.totals.cache_misses,
            self.totals.cache_evictions,
            self.totals.shuffle_bytes_written,
            self.totals.shuffle_records_read,
        )?;
        if self.spill.any() {
            let sp = &self.spill;
            writeln!(
                f,
                "spill: {} B written / {} B read back across {} files \
                 ({} blocks, {} buckets), {} cache puts skipped, \
                 peak resident max {} B",
                sp.bytes_spilled,
                sp.bytes_read_back,
                sp.spill_files,
                sp.blocks_spilled,
                sp.buckets_spilled,
                sp.cache_skipped,
                sp.peak_resident.iter().copied().max().unwrap_or(0),
            )?;
        }
        if self.prune.any() {
            let pr = &self.prune;
            writeln!(
                f,
                "prune: {} passes, {} cells skipped, {} residents bound-rejected, \
                 {} / {} evals avoided ({:.1}%), {} memo hits",
                pr.passes,
                pr.cells_skipped,
                pr.bound_rejected,
                pr.evals_avoided,
                pr.evals_done + pr.evals_avoided,
                pr.avoided_fraction() * 100.0,
                pr.memo_hits,
            )?;
        }
        if self.recovery.any() {
            let r = &self.recovery;
            writeln!(
                f,
                "recovery: {} executors lost ({} blacklisted), {} fetch failures, \
                 {} map tasks recomputed, {} in-flight results rescheduled, \
                 speculation {}/{} wins",
                r.executors_lost,
                r.executors_blacklisted,
                r.fetch_failures,
                r.recomputed_map_tasks,
                r.tasks_lost,
                r.speculative_wins,
                r.speculative_launched,
            )?;
        }
        if self.sched.morsel_stages > 0 {
            let sc = &self.sched;
            writeln!(
                f,
                "scheduling: {} morsel stages, {} morsels ({} stolen), \
                 utilization {:.1}%, imbalance {:.2}",
                sc.morsel_stages,
                sc.morsels,
                sc.steals,
                sc.utilization * 100.0,
                sc.imbalance,
            )?;
            writeln!(
                f,
                "{:>6} {:>10} {:>8} {:>7} {:>6}",
                "worker", "busy(ms)", "morsels", "steals", "util%"
            )?;
            for w in &sc.per_worker {
                writeln!(
                    f,
                    "{:>6} {:>10.1} {:>8} {:>7} {:>6.1}",
                    w.worker,
                    w.busy_us as f64 / 1e3,
                    w.morsels,
                    w.steals,
                    100.0 * w.busy_us as f64 / sc.makespan_us.max(1) as f64,
                )?;
            }
        }
        if self.batch.any() {
            let b = &self.batch;
            writeln!(
                f,
                "batch: {} chunks / {} records across {} stage-ops, \
                 ~{:.1} ms dispatch saved vs row-at-a-time",
                b.chunks,
                b.records,
                b.stages.len(),
                b.dispatch_saved_us as f64 / 1e3,
            )?;
        }
        if self.ingest.any() {
            let ing = &self.ingest;
            writeln!(
                f,
                "ingest: {} batches committed ({} retries), {} quarantined, \
                 {} deferrals, {} recoveries ({} fallbacks), {} driver kills, \
                 {} checkpoint B",
                ing.batches.len(),
                ing.batch_retries,
                ing.batches_quarantined,
                ing.deferrals,
                ing.recoveries,
                ing.checkpoint_fallbacks,
                ing.driver_kills,
                ing.checkpoint_bytes,
            )?;
            writeln!(
                f,
                "{:>6} {:>8} {:>8} {:>6} {:>4} {:>6} {:>12} {:>8}",
                "batch", "reports", "detect", "dup", "try", "defer", "latency(ms)", "ckpt(B)"
            )?;
            for b in &ing.batches {
                writeln!(
                    f,
                    "{:>6} {:>8} {:>8} {:>6} {:>4} {:>6} {:>12.1} {:>8}",
                    b.batch,
                    b.reports,
                    b.detections,
                    b.duplicates,
                    b.retries,
                    b.deferrals,
                    b.latency_us as f64 / 1e3,
                    b.checkpoint_bytes,
                )?;
            }
        }
        if self.serve.any() {
            let sv = &self.serve;
            writeln!(
                f,
                "serve: {} requests in {} batches (mean size {:.1}, max queue {}), \
                 memo {}/{} hits ({:.1}%), {:.1} ms service",
                sv.requests,
                sv.batches,
                sv.mean_batch_size(),
                sv.max_queue_depth,
                sv.memo_hits,
                sv.memo_lookups,
                sv.memo_hit_rate() * 100.0,
                sv.service_us as f64 / 1e3,
            )?;
            write!(f, "serve batch sizes:")?;
            for (i, &count) in sv.batch_size_hist.iter().enumerate() {
                if count > 0 {
                    write!(f, " <={}:{}", 1u64 << i, count)?;
                }
            }
            writeln!(f)?;
        }
        for fl in &self.failures {
            writeln!(
                f,
                "failure: {} task {} attempt {}: {}",
                truncate_name(&fl.stage, 40),
                fl.task,
                fl.attempt,
                fl.reason
            )?;
        }
        if !self.user_counters.is_empty() {
            writeln!(f, "user counters:")?;
            for (name, value) in &self.user_counters {
                writeln!(f, "  {name} = {value}")?;
            }
        }
        Ok(())
    }
}

fn truncate_name(name: &str, width: usize) -> &str {
    match name.char_indices().nth(width) {
        Some((idx, _)) => &name[..idx],
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultConfig;
    use crate::{ClusterConfig, PairRdd};

    #[test]
    fn journal_records_stage_and_task_events() {
        let c = Cluster::local(2);
        c.run_job("probe", 3, |i, _| Ok(vec![i])).unwrap();
        let events = c.journal().events();
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags.iter().filter(|t| **t == "stage_started").count(), 1);
        assert_eq!(tags.iter().filter(|t| **t == "stage_finished").count(), 1);
        assert_eq!(tags.iter().filter(|t| **t == "task_launched").count(), 3);
        assert_eq!(tags.iter().filter(|t| **t == "task_succeeded").count(), 3);
        // Sequence numbers are unique and ordered.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn failures_and_retries_are_journaled_with_reasons() {
        let mut cfg = ClusterConfig::local(1);
        cfg.fault = FaultConfig::with_probability(1.0, 3);
        cfg.max_task_attempts = 2;
        let c = Cluster::new(cfg);
        let _ = c
            .run_job::<u8, _>("doomed", 1, |_, _| Ok(vec![]))
            .unwrap_err();
        let failed: Vec<Event> = c
            .journal()
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::TaskFailed { .. }))
            .collect();
        assert_eq!(failed.len(), 2);
        match (&failed[0].kind, &failed[1].kind) {
            (
                EventKind::TaskFailed {
                    will_retry: r0,
                    reason,
                    ..
                },
                EventKind::TaskFailed { will_retry: r1, .. },
            ) => {
                assert!(*r0, "first failure retries");
                assert!(!*r1, "last failure does not");
                assert!(reason.contains("fault"), "reason: {reason}");
            }
            other => panic!("unexpected kinds: {other:?}"),
        }
        let report = JobReport::capture(&c);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.totals.tasks_failed, 2);
    }

    #[test]
    fn cache_and_shuffle_events_flow_through_rdd_execution() {
        let c = Cluster::local(2);
        let cached = c
            .parallelize((0..64u32).collect::<Vec<_>>(), 4)
            .map(|x| (x % 4, x))
            .reduce_by_key(|a, b| a + b, 2)
            .cache();
        cached.count().unwrap();
        cached.count().unwrap();
        let tags: Vec<&str> = c.journal().events().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"shuffle_write"));
        assert!(tags.contains(&"shuffle_read"));
        assert!(tags.contains(&"cache_miss"), "first count computes");
        assert!(tags.contains(&"cache_hit"), "second count hits");
    }

    #[test]
    fn report_aggregates_stage_distribution_and_flags_stragglers() {
        let c = Cluster::local(4);
        c.run_job("skewed", 4, |i, ctx| {
            if i == 0 {
                ctx.charge_ops(10_000_000);
            }
            Ok(vec![0u8])
        })
        .unwrap();
        let report = c.job_report();
        assert_eq!(report.stages.len(), 1);
        let s = &report.stages[0];
        assert_eq!(s.tasks, 4);
        assert!(s.min_task_us <= s.p50_task_us && s.p50_task_us <= s.max_task_us);
        assert!(s.straggler, "one hot task over 3 cold ones must flag");
        assert_eq!(report.straggler_stages().count(), 1);
    }

    #[test]
    fn ingest_section_folds_coalesced_batch_events() {
        let c = Cluster::local(2);
        c.journal().record(EventKind::IngestRecovered {
            generation: 3,
            batch_high_water: 2,
            fallback: true,
        });
        for batch in 2..4u64 {
            c.journal().record(EventKind::IngestBatchCommitted {
                batch,
                reports: 50,
                detections: 120,
                duplicates: 4,
                retries: batch - 2,
                deferrals: 0,
                latency_us: 1_000 * batch,
                checkpoint_bytes: 2_048,
            });
        }
        c.journal().record(EventKind::IngestDeferred {
            batch: 4,
            resident_bytes: 1 << 20,
            lagged_pairs: 999,
            waited_us: 500,
        });
        c.journal().record(EventKind::IngestQuarantined {
            batch: 4,
            reports: 50,
            attempts: 3,
            reason: "injected".into(),
        });
        let report = c.job_report();
        assert!(report.ingest.any());
        assert_eq!(report.ingest.batches.len(), 2);
        assert_eq!(report.ingest.batches[0].batch, 2);
        assert_eq!(report.ingest.batches[1].retries, 1);
        assert_eq!(report.ingest.batch_retries, 1);
        assert_eq!(report.ingest.batches_quarantined, 1);
        assert_eq!(report.ingest.deferrals, 1);
        assert_eq!(report.ingest.recoveries, 1);
        assert_eq!(report.ingest.checkpoint_fallbacks, 1);
        assert_eq!(report.ingest.checkpoint_bytes, 4_096);
        let json = report.to_json();
        assert!(json.contains("\"batches_committed\": 2"));
        assert!(json.contains("\"checkpoint_fallbacks\": 1"));
        let text = report.to_string();
        assert!(text.contains("ingest: 2 batches committed"));
    }

    #[test]
    fn serve_events_fold_into_the_serve_section() {
        let c = Cluster::local(2);
        for (batch, requests, queue_depth) in [(0u64, 1u64, 0u64), (1, 16, 3), (2, 1500, 40)] {
            c.journal().record(EventKind::ServeBatchExecuted {
                batch,
                requests,
                queue_depth,
                memo_lookups: 10,
                memo_hits: 4,
                service_us: 100,
                latency_us: 250,
            });
        }
        let report = c.job_report();
        assert!(report.serve.any());
        assert_eq!(report.serve.batches, 3);
        assert_eq!(report.serve.requests, 1517);
        assert_eq!(report.serve.max_queue_depth, 40);
        // Pow2 buckets: 1 → bucket 0, 16 → bucket 4, 1500 → clamped last.
        assert_eq!(report.serve.batch_size_hist[0], 1);
        assert_eq!(report.serve.batch_size_hist[4], 1);
        assert_eq!(report.serve.batch_size_hist[SERVE_HIST_BUCKETS - 1], 1);
        assert_eq!(report.serve.memo_lookups, 30);
        assert_eq!(report.serve.memo_hits, 12);
        assert!((report.serve.memo_hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(report.serve.service_us, 300);
        let json = report.to_json();
        assert!(json.contains("\"serve\": {\"batches\": 3, \"requests\": 1517"));
        assert!(json.contains("\"memo_hit_rate\": 0.4000"));
        let text = report.to_string();
        assert!(text.contains("serve: 1517 requests in 3 batches"));
        assert!(text.contains("<=1:1"));
        // A run with no serve events emits the JSON section but no text.
        let quiet = Cluster::local(1);
        quiet.run_job("q", 1, |_, _| Ok(vec![0u8])).unwrap();
        let quiet_report = quiet.job_report();
        assert!(!quiet_report.serve.any());
        assert!(quiet_report
            .to_json()
            .contains("\"serve\": {\"batches\": 0"));
        assert!(!quiet_report.to_string().contains("serve:"));
    }

    #[test]
    fn json_is_schema_stable_and_escaped() {
        let c = Cluster::local(2);
        c.run_job("quoted \"stage\"\n", 2, |_, ctx| {
            ctx.counter("things").add(3);
            Ok(vec![1u8])
        })
        .unwrap();
        let json = c.job_report().to_json();
        for key in [
            "\"schema_version\": 8",
            "\"batch\"",
            "\"ingest\"",
            "\"serve\"",
            "\"max_queue_depth\"",
            "\"memo_hit_rate\"",
            "\"mean_batch_size\"",
            "\"batch_size_hist\"",
            "\"batches_committed\"",
            "\"batches_quarantined\"",
            "\"checkpoint_fallbacks\"",
            "\"driver_kills\"",
            "\"checkpoint_bytes\"",
            "\"dispatch_saved_us\"",
            "\"prune\"",
            "\"cells_skipped\"",
            "\"evals_avoided\"",
            "\"memo_hits\"",
            "\"avoided_fraction\"",
            "\"spill\"",
            "\"bytes_spilled\"",
            "\"bytes_read_back\"",
            "\"peak_resident\"",
            "\"cache_skipped\"",
            "\"virtual_us\"",
            "\"total_work_us\"",
            "\"totals\"",
            "\"jobs_submitted\"",
            "\"recovery\"",
            "\"executors_lost\"",
            "\"fetch_failures\"",
            "\"recomputed_map_tasks\"",
            "\"speculative_wins\"",
            "\"sched\"",
            "\"morsel_stages\"",
            "\"utilization\"",
            "\"imbalance\"",
            "\"per_worker\"",
            "\"stages\"",
            "\"attempts\"",
            "\"p50_task_us\"",
            "\"straggler\"",
            "\"failures\"",
            "\"user_counters\"",
            "\"events\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains("quoted \\\"stage\\\"\\n"), "escaping: {json}");
        assert!(json.contains("\"things\": 6"), "user counter: {json}");
        // Brace balance as a cheap well-formedness proxy.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn text_report_renders_the_stage_table() {
        let c = Cluster::local(2);
        c.run_job("render-me", 2, |_, _| Ok(vec![1u8])).unwrap();
        let text = c.job_report().to_string();
        assert!(text.contains("run journal"));
        assert!(text.contains("render-me"));
        assert!(text.contains("p50(ms)"));
    }

    #[test]
    fn reset_run_state_clears_the_journal() {
        let c = Cluster::local(2);
        c.run_job("x", 2, |_, _| Ok(vec![0u8])).unwrap();
        assert!(!c.journal().is_empty());
        c.reset_run_state();
        assert!(c.journal().is_empty());
        assert_eq!(c.journal().dropped(), 0);
    }

    #[test]
    fn journal_is_bounded() {
        let j = RunJournal::new();
        for _ in 0..(RunJournal::MAX_EVENTS + 10) {
            j.record(EventKind::CacheHit {
                rdd: 0,
                partition: 0,
            });
        }
        assert_eq!(j.len(), RunJournal::MAX_EVENTS);
        assert_eq!(j.dropped(), 10);
        j.clear();
        assert_eq!(j.len(), 0);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn virtual_stamps_are_monotone_across_stages() {
        let c = Cluster::local(1);
        c.run_job("first", 2, |_, ctx| {
            ctx.charge_ops(1000);
            Ok(vec![0u8])
        })
        .unwrap();
        c.run_job("second", 2, |_, _| Ok(vec![0u8])).unwrap();
        let events = c.journal().events();
        let first_start = events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::StageStarted { stage, .. } if stage == "first"))
            .unwrap();
        let second_start = events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::StageStarted { stage, .. } if stage == "second"))
            .unwrap();
        assert!(second_start.at_us > first_start.at_us);
    }

    #[test]
    fn empty_report_is_valid() {
        let c = Cluster::local(1);
        let report = c.job_report();
        assert!(report.stages.is_empty());
        assert!(report.failures.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"stages\": []"));
        let _ = report.to_string();
    }

    #[test]
    fn json_string_escapes_control_chars() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }

    #[test]
    fn sched_report_captures_morsel_stages_and_steals() {
        let c = Cluster::local(4);
        // One skewed partition: morsels spill over and get stolen.
        let partitions: Vec<Vec<u64>> = vec![vec![500; 64], vec![500; 2], vec![], vec![500]];
        c.run_morsel_job(
            "skewed",
            partitions,
            |&w| w,
            |_, items, ctx| {
                ctx.charge_ops(items.iter().sum());
                Ok(items.to_vec())
            },
        )
        .unwrap();
        let report = c.job_report();
        let sc = &report.sched;
        assert_eq!(sc.workers, 4);
        assert_eq!(sc.morsel_stages, 1);
        assert!(sc.morsels >= 4, "at least one morsel per partition");
        assert!(sc.steals > 0, "idle workers must steal from the hot queue");
        assert_eq!(sc.per_worker.len(), 4);
        assert_eq!(
            sc.per_worker.iter().map(|w| w.morsels).sum::<u64>(),
            sc.morsels
        );
        assert!(sc.utilization > 0.0 && sc.utilization <= 1.0);
        assert!(sc.imbalance >= 1.0);
        let text = report.to_string();
        assert!(text.contains("scheduling:"), "{text}");
        assert!(text.contains("util%"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"per_worker\": [{\"worker\": 0"), "{json}");
    }

    #[test]
    fn batch_report_aggregates_chunk_events() {
        let c = Cluster::local(2);
        c.journal().record(EventKind::BatchExecuted {
            stage: "collect[map]".into(),
            op: "map".into(),
            chunks: 4,
            records: 4096,
            max_chunk: 1024,
        });
        c.journal().record(EventKind::BatchExecuted {
            stage: "collect[map]".into(),
            op: "map".into(),
            chunks: 2,
            records: 2048,
            max_chunk: 1024,
        });
        let report = c.job_report();
        assert_eq!(report.batch.chunks, 6);
        assert_eq!(report.batch.records, 6144);
        assert_eq!(report.batch.stages.len(), 1);
        let row = &report.batch.stages[0];
        assert_eq!(row.op, "map");
        assert_eq!(row.p50_chunk_records, 1024);
        assert_eq!(row.max_chunk_records, 1024);
        // (records − chunks) at the default 2 µs per dispatch.
        assert_eq!(report.batch.dispatch_saved_us, (6144 - 6) * 2000 / 1000);
        let json = report.to_json();
        assert!(json.contains("\"batch\": {\"chunks\": 6"), "{json}");
        assert!(report.to_string().contains("batch: 6 chunks"));
    }

    #[test]
    fn prune_report_aggregates_events_and_renders() {
        let c = Cluster::local(2);
        c.journal().record(EventKind::PruneApplied {
            scope: "classify-block".into(),
            cells_skipped: 3,
            bound_rejected: 40,
            evals_done: 60,
            evals_avoided: 140,
            memo_hits: 0,
        });
        c.journal().record(EventKind::PruneApplied {
            scope: "memo".into(),
            cells_skipped: 0,
            bound_rejected: 0,
            evals_done: 0,
            evals_avoided: 10,
            memo_hits: 10,
        });
        let report = c.job_report();
        let pr = &report.prune;
        assert!(pr.any());
        assert_eq!(pr.passes, 2);
        assert_eq!(pr.cells_skipped, 3);
        assert_eq!(pr.bound_rejected, 40);
        assert_eq!(pr.evals_done, 60);
        assert_eq!(pr.evals_avoided, 150);
        assert_eq!(pr.memo_hits, 10);
        assert!((pr.avoided_fraction() - 150.0 / 210.0).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"prune\": {\"passes\": 2"), "{json}");
        let text = report.to_string();
        assert!(text.contains("prune: 2 passes"), "{text}");
        assert!(text.contains("memo hits"), "{text}");
    }

    #[test]
    fn prune_section_stays_silent_without_events() {
        let c = Cluster::local(1);
        c.run_job("plain", 1, |_, _| Ok(vec![0u8])).unwrap();
        let report = c.job_report();
        assert!(!report.prune.any());
        assert_eq!(report.prune.avoided_fraction(), 0.0);
        assert!(!report.to_string().contains("prune:"));
    }

    #[test]
    fn prune_events_at_pair_scale_keep_the_journal_bounded() {
        // 100k-pair scale: even if a run journaled one prune event per
        // candidate pair (it coalesces per block, but the bound must hold
        // regardless), the buffer stops at MAX_EVENTS and the report still
        // renders from the stored prefix with the overflow counted.
        let c = Cluster::local(1);
        for i in 0..(RunJournal::MAX_EVENTS as u64 + 5_000) {
            c.journal().record(EventKind::PruneApplied {
                scope: "pair".into(),
                cells_skipped: 0,
                bound_rejected: 1,
                evals_done: 1,
                evals_avoided: 1,
                memo_hits: i % 2,
            });
        }
        assert_eq!(c.journal().len(), RunJournal::MAX_EVENTS);
        assert_eq!(c.journal().dropped(), 5_000);
        let report = c.job_report();
        assert_eq!(report.prune.passes, RunJournal::MAX_EVENTS as u64);
        assert_eq!(report.totals.events_dropped, 5_000);
        assert_eq!(report.totals.events, RunJournal::MAX_EVENTS as u64 + 5_000);
        let _ = report.to_json();
    }

    #[test]
    fn missing_batch_row_yields_warning_not_panic() {
        // A duplicated key in the first-seen order (journal inconsistency)
        // used to unwrap-panic inside capture and poison the whole report.
        let order = vec![
            ("s".to_string(), "map".to_string()),
            ("s".to_string(), "map".to_string()),
        ];
        let mut rows = std::collections::HashMap::new();
        rows.insert(("s".to_string(), "map".to_string()), (2, 100, 50, vec![50]));
        let report = drain_batch_rows(order, rows);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.chunks, 2, "real row still aggregated");
        assert!(
            report.stages[1].op.contains("warning"),
            "second drain yields a warning row: {:?}",
            report.stages[1].op
        );
        assert_eq!(report.stages[1].chunks, 0);
    }

    #[test]
    fn spill_section_is_empty_without_disk_pressure() {
        let c = Cluster::local(2);
        c.run_job("tiny", 2, |_, _| Ok(vec![1u8])).unwrap();
        let report = c.job_report();
        assert!(!report.spill.any());
        assert_eq!(report.spill.bytes_spilled, 0);
        assert_eq!(report.spill.peak_resident.len(), 2);
        assert!(!report.to_string().contains("spill:"));
        assert!(report
            .to_json()
            .contains("\"spill\": {\"bytes_spilled\": 0"));
    }

    #[test]
    fn plain_stages_leave_the_sched_section_empty() {
        let c = Cluster::local(2);
        c.run_job("plain", 4, |i, _| Ok(vec![i])).unwrap();
        let report = c.job_report();
        assert_eq!(report.sched.morsel_stages, 0);
        assert!(report.sched.per_worker.is_empty());
        assert!(!report.to_string().contains("scheduling:"));
    }

    #[test]
    fn steal_and_idle_events_are_coalesced_per_stage() {
        let c = Cluster::local(4);
        // 200 morsels from one hot partition (each item fills a whole morsel
        // budget): without coalescing this would journal O(morsels) steal
        // events; the bound is workers² + workers.
        let partitions: Vec<Vec<u64>> = vec![vec![crate::SchedConfig::DEFAULT_MORSEL_OPS; 200]];
        c.run_morsel_job("hot", partitions, |&w| w, |_, items, _| Ok(items.to_vec()))
            .unwrap();
        let events = c.journal().events();
        let stolen = events
            .iter()
            .filter(|e| e.kind.tag() == "morsel_stolen")
            .count();
        let idle = events
            .iter()
            .filter(|e| e.kind.tag() == "worker_idle")
            .count();
        assert!(stolen > 0, "the hot queue must be robbed");
        assert!(stolen <= 16, "coalesced: bounded by workers², got {stolen}");
        assert!(idle <= 4, "one idle line per worker at most, got {idle}");
    }
}
