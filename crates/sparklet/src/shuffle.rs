//! Shuffle service: bucketed map-output storage between stages.
//!
//! A wide transformation materialises its parent by running a map stage that
//! hash-partitions every parent partition into `R` buckets and registers them
//! here; reduce-side tasks then fetch bucket `r` of every map output. In
//! Spark this crosses the network — the engine accounts the would-be network
//! volume in [`crate::metrics::ClusterMetrics`] and charges it to the virtual
//! clock instead.
//!
//! Map outputs are keyed by map-task index and tagged with the executor that
//! produced them. That gives three properties the failure domain needs:
//! reads concatenate buckets in map-task order (deterministic regardless of
//! which worker finished first), duplicate writes of the same map task are
//! ignored (a speculative clone or recomputation cannot double records), and
//! killing an executor invalidates exactly its map outputs
//! ([`ShuffleService::invalidate_executor`]) so the next read surfaces
//! [`SparkletError::FetchFailed`] and the scheduler recomputes just the
//! missing parents from lineage.
//!
//! With a [`SpillManager`] attached (see [`ShuffleService::with_spill`],
//! wired by [`crate::Cluster::new`]), each executor's *resident* shuffle
//! bytes are capped ([`crate::SpillConfig::shuffle_capacity`], Spark's
//! `shuffle.memoryFraction` pool). A map output that would overflow the pool
//! is serialized bucket-by-bucket into the executor's spill file instead of
//! being held in memory — read-back happens transparently in
//! [`ShuffleService::read_bucket`]. When the disk tier is disabled the same
//! write fails with [`SparkletError::MemoryExceeded`], failing the task and,
//! once attempts are exhausted, the job: exactly the abort a memory-capped
//! run hits without out-of-core execution.

use crate::error::{Result, SparkletError};
use crate::journal::{EventKind, RunJournal};
use crate::metrics::ClusterMetrics;
use crate::spill::{SpillManager, SpillSlot};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Bucket = Arc<dyn Any + Send + Sync>;

/// Where one reduce bucket of a map output lives.
enum BucketStore {
    /// In memory, counted against the owner's resident shuffle pool.
    Resident(Bucket),
    /// On the owner's spill file; read back (and type-recovered through the
    /// codec registry) on fetch.
    Spilled(SpillSlot),
}

/// One map task's registered output.
struct MapOutput {
    /// Executor that produced (and in real Spark would serve) the output.
    executor: usize,
    /// `buckets[r]` is the chunk destined for reduce partition `r`.
    buckets: Vec<BucketStore>,
    /// Estimated bytes held resident by this output (0 when fully spilled);
    /// released from the owner's pool when the output is dropped.
    resident_bytes: u64,
}

struct ShuffleData {
    /// `outputs[m]` is map task `m`'s output, `None` until written (or
    /// after its executor died).
    outputs: Vec<Option<MapOutput>>,
    num_reduce: usize,
    complete: bool,
}

struct ShuffleStore {
    shuffles: HashMap<u64, ShuffleData>,
    /// Resident shuffle bytes per executor (the `shuffle.memoryFraction`
    /// pool), compared against the spill manager's shuffle capacity.
    resident: HashMap<usize, u64>,
}

/// Registry of all shuffles produced during a cluster's lifetime.
pub struct ShuffleService {
    store: Mutex<ShuffleStore>,
    metrics: ClusterMetrics,
    journal: RunJournal,
    /// Disk tier; `None` means unbounded resident buckets (standalone
    /// shuffle services in unit tests keep the historical semantics).
    spill: Option<SpillManager>,
}

impl ShuffleService {
    /// Create an empty shuffle service.
    pub fn new(metrics: ClusterMetrics) -> Self {
        ShuffleService {
            store: Mutex::new(ShuffleStore {
                shuffles: HashMap::new(),
                resident: HashMap::new(),
            }),
            metrics,
            journal: RunJournal::new(),
            spill: None,
        }
    }

    /// Share a cluster's run journal so shuffle reads/writes are journaled
    /// alongside scheduler events (builder, used by [`crate::Cluster::new`]).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = journal;
        self
    }

    /// Attach the disk tier (builder, used by [`crate::Cluster::new`]): caps
    /// each executor's resident shuffle bytes at the spill manager's shuffle
    /// capacity, spilling over-cap map outputs (or failing them with
    /// [`SparkletError::MemoryExceeded`] when spill is disabled).
    pub fn with_spill(mut self, spill: SpillManager) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Has `shuffle_id` been fully materialised (every map output present)?
    pub fn is_complete(&self, shuffle_id: u64) -> bool {
        self.store
            .lock()
            .shuffles
            .get(&shuffle_id)
            .map(|s| s.complete)
            .unwrap_or(false)
    }

    /// Register the output of map task `map_task` (of `num_maps`) computed
    /// on `executor`: `chunks[r]` is the data destined for reduce partition
    /// `r`. `bytes` is the estimated serialized volume (for metrics /
    /// virtual time). Keep-first: if the map task already has a live
    /// output (a speculative clone or a racing recomputation lost), the
    /// write is ignored and `Ok(false)` is returned — nothing is journaled
    /// or counted for a discarded duplicate.
    ///
    /// With a disk tier attached, a write that would push the executor's
    /// resident shuffle bytes over the spill capacity is serialized
    /// bucket-by-bucket to the executor's spill file (spill enabled + codec
    /// registered for `T`) or fails with [`SparkletError::MemoryExceeded`],
    /// which fails the task like any other attempt error.
    #[allow(clippy::too_many_arguments)]
    pub fn write_map_output<T: Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        map_task: usize,
        num_maps: usize,
        num_reduce: usize,
        executor: usize,
        chunks: Vec<Vec<T>>,
        bytes: u64,
    ) -> Result<bool> {
        debug_assert_eq!(chunks.len(), num_reduce);
        debug_assert!(map_task < num_maps);
        let records: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let mut spilled_buckets = 0u64;
        {
            let mut s = self.store.lock();
            let resident_now = s.resident.get(&executor).copied().unwrap_or(0);
            let entry = s.shuffles.entry(shuffle_id).or_insert_with(|| ShuffleData {
                outputs: (0..num_maps).map(|_| None).collect(),
                num_reduce,
                complete: false,
            });
            debug_assert_eq!(entry.outputs.len(), num_maps);
            debug_assert_eq!(entry.num_reduce, num_reduce);
            if entry.outputs[map_task].is_some() {
                return Ok(false);
            }
            let capacity = self
                .spill
                .as_ref()
                .map_or(u64::MAX, |sp| sp.shuffle_capacity() as u64);
            let output = if resident_now.saturating_add(bytes) <= capacity {
                // Fits in the resident pool.
                MapOutput {
                    executor,
                    buckets: chunks
                        .into_iter()
                        .map(|chunk| BucketStore::Resident(Arc::new(chunk) as Bucket))
                        .collect(),
                    resident_bytes: bytes,
                }
            } else {
                // Over the pool: spill every bucket or fail the attempt.
                let sp = self.spill.as_ref().expect("finite capacity implies spill");
                let exceeded = SparkletError::MemoryExceeded {
                    requested: (resident_now.saturating_add(bytes)) as usize,
                    budget: capacity as usize,
                };
                if !sp.enabled() {
                    self.metrics.memory_kills.inc();
                    return Err(exceeded);
                }
                let mut buckets = Vec::with_capacity(chunks.len());
                for chunk in &chunks {
                    match sp.write(executor, chunk) {
                        Some(slot) => buckets.push(BucketStore::Spilled(slot)),
                        None => {
                            // No codec for T: out-of-core is impossible for
                            // this payload, surface the memory failure.
                            self.metrics.memory_kills.inc();
                            return Err(exceeded);
                        }
                    }
                }
                spilled_buckets = buckets.len() as u64;
                MapOutput {
                    executor,
                    buckets,
                    resident_bytes: 0,
                }
            };
            let resident_bytes = output.resident_bytes;
            entry.outputs[map_task] = Some(output);
            if resident_bytes > 0 {
                *s.resident.entry(executor).or_insert(0) += resident_bytes;
                if let Some(sp) = self.spill.as_ref() {
                    sp.add_resident(executor, resident_bytes);
                }
            }
        }
        if spilled_buckets > 0 {
            self.metrics.buckets_spilled.add(spilled_buckets);
            self.journal
                .record(EventKind::SpillWrite { executor, bytes });
        }
        self.metrics.shuffle_records_written.add(records);
        self.metrics.shuffle_bytes_written.add(bytes);
        self.journal.record(EventKind::ShuffleWrite {
            shuffle: shuffle_id,
            records,
            bytes,
        });
        Ok(true)
    }

    /// Release a dropped output's resident bytes from its owner's pool.
    fn release_output(&self, resident: &mut HashMap<usize, u64>, output: &MapOutput) {
        if output.resident_bytes == 0 {
            return;
        }
        if let Some(r) = resident.get_mut(&output.executor) {
            *r = r.saturating_sub(output.resident_bytes);
        }
        if let Some(sp) = self.spill.as_ref() {
            sp.sub_resident(output.executor, output.resident_bytes);
        }
    }

    /// Mark a shuffle complete. Only takes effect once every map output is
    /// present; returns whether the shuffle is complete afterwards.
    pub fn mark_complete(&self, shuffle_id: u64) -> bool {
        let mut s = self.store.lock();
        match s.shuffles.get_mut(&shuffle_id) {
            Some(data) => {
                data.complete = data.outputs.iter().all(Option::is_some);
                data.complete
            }
            None => false,
        }
    }

    /// Discard a shuffle entirely (used before a map stage re-materialises
    /// from scratch) so retries do not duplicate records.
    pub fn discard(&self, shuffle_id: u64) {
        let mut s = self.store.lock();
        if let Some(data) = s.shuffles.remove(&shuffle_id) {
            let mut resident = std::mem::take(&mut s.resident);
            for output in data.outputs.iter().flatten() {
                self.release_output(&mut resident, output);
            }
            s.resident = resident;
        }
    }

    /// Drop every map output produced by `executor` — the shuffle half of
    /// an executor kill. Affected shuffles flip back to incomplete so
    /// readers surface [`SparkletError::FetchFailed`] until the scheduler
    /// recomputes the missing maps. Returns the number of map outputs lost.
    pub fn invalidate_executor(&self, executor: usize) -> u64 {
        let mut lost = 0;
        let mut s = self.store.lock();
        let mut resident = std::mem::take(&mut s.resident);
        for data in s.shuffles.values_mut() {
            for slot in data.outputs.iter_mut() {
                if slot.as_ref().is_some_and(|o| o.executor == executor) {
                    if let Some(output) = slot.take() {
                        self.release_output(&mut resident, &output);
                    }
                    data.complete = false;
                    lost += 1;
                }
            }
        }
        s.resident = resident;
        lost
    }

    /// Map tasks of `shuffle_id` whose outputs are missing, or `None` if
    /// the shuffle is not registered at all.
    pub fn missing_maps(&self, shuffle_id: u64) -> Option<Vec<usize>> {
        self.store.lock().shuffles.get(&shuffle_id).map(|data| {
            data.outputs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_none())
                .map(|(m, _)| m)
                .collect()
        })
    }

    /// Fetch reduce bucket `r`: the concatenation of that bucket across all
    /// map outputs, in map-task order. Spilled buckets are read back from
    /// their owner's spill file transparently. Errors with
    /// [`SparkletError::FetchFailed`] when the shuffle is unknown,
    /// incomplete, any map output is gone, or a spilled bucket's file died
    /// with its executor — the recoverable conditions the scheduler answers
    /// with lineage recomputation. A bucket index out of range or a type
    /// mismatch is a caller bug and still panics.
    pub fn read_bucket<T: Clone + Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        r: usize,
    ) -> Result<Vec<T>> {
        let fetch_failed = SparkletError::FetchFailed {
            shuffle: shuffle_id,
            bucket: r,
        };
        // (map task, resident chunk or spill slot) per map output.
        enum Fetched {
            Resident(Bucket),
            Spilled(usize, SpillSlot),
        }
        let chunks: Vec<Fetched> = {
            let s = self.store.lock();
            let data = s
                .shuffles
                .get(&shuffle_id)
                .ok_or_else(|| fetch_failed.clone())?;
            if !data.complete {
                return Err(fetch_failed);
            }
            assert!(r < data.num_reduce, "bucket {r} out of range");
            let mut chunks = Vec::with_capacity(data.outputs.len());
            for (m, output) in data.outputs.iter().enumerate() {
                let output = output.as_ref().ok_or_else(|| fetch_failed.clone())?;
                chunks.push(match &output.buckets[r] {
                    BucketStore::Resident(b) => Fetched::Resident(b.clone()),
                    BucketStore::Spilled(slot) => Fetched::Spilled(m, slot.clone()),
                });
            }
            chunks
        };
        // Downcast first, then concatenate into exactly-sized storage: one
        // allocation for the whole bucket, no doubling during the copy.
        let mut typed: Vec<Arc<Vec<T>>> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let arc = match chunk {
                Fetched::Resident(b) => b,
                Fetched::Spilled(m, slot) => {
                    let sp = self.spill.as_ref().expect("spilled bucket implies spill");
                    match sp.read(&slot) {
                        Some(any) => {
                            self.journal.record(EventKind::SpillRead {
                                executor: slot.executor(),
                                bytes: slot.len(),
                            });
                            any
                        }
                        None => {
                            // The spill file died with its executor (or the
                            // bytes no longer decode): drop the map output
                            // so recovery recomputes exactly this parent.
                            let mut s = self.store.lock();
                            if let Some(data) = s.shuffles.get_mut(&shuffle_id) {
                                if let Some(out) = data.outputs.get_mut(m) {
                                    *out = None;
                                }
                                data.complete = false;
                            }
                            return Err(fetch_failed);
                        }
                    }
                }
            };
            typed.push(
                arc.downcast::<Vec<T>>()
                    .expect("shuffle bucket type mismatch"),
            );
        }
        let total: usize = typed.iter().map(|c| c.len()).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in typed {
            out.extend_from_slice(&chunk);
        }
        self.metrics.shuffle_records_read.add(out.len() as u64);
        self.journal.record(EventKind::ShuffleRead {
            shuffle: shuffle_id,
            bucket: r,
            records: out.len() as u64,
        });
        Ok(out)
    }

    /// Number of registered shuffles (diagnostics).
    pub fn shuffle_count(&self) -> usize {
        self.store.lock().shuffles.len()
    }

    /// Resident shuffle bytes currently held for `executor`.
    pub fn resident_bytes(&self, executor: usize) -> u64 {
        self.store
            .lock()
            .resident
            .get(&executor)
            .copied()
            .unwrap_or(0)
    }

    /// Drop all shuffle data (between experiments).
    pub fn clear(&self) {
        let mut s = self.store.lock();
        if let Some(sp) = self.spill.as_ref() {
            for (&e, &bytes) in s.resident.iter() {
                sp.sub_resident(e, bytes);
            }
        }
        s.shuffles.clear();
        s.resident.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_concatenates_in_map_order() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        // Two map tasks, two reduce partitions — written out of order.
        svc.write_map_output(7, 1, 2, 2, 0, vec![vec![4u32], vec![5, 6]], 12)
            .unwrap();
        svc.write_map_output(7, 0, 2, 2, 1, vec![vec![1u32, 2], vec![3]], 12)
            .unwrap();
        assert!(svc.mark_complete(7));
        let r0: Vec<u32> = svc.read_bucket(7, 0).unwrap();
        assert_eq!(r0, vec![1, 2, 4], "map-task order, not write order");
        let r1: Vec<u32> = svc.read_bucket(7, 1).unwrap();
        assert_eq!(r1, vec![3, 5, 6]);
    }

    #[test]
    fn duplicate_map_output_is_kept_first() {
        let metrics = ClusterMetrics::new();
        let svc = ShuffleService::new(metrics.clone());
        assert!(svc
            .write_map_output(1, 0, 1, 1, 0, vec![vec![1u8]], 1)
            .unwrap());
        assert!(
            !svc.write_map_output(1, 0, 1, 1, 1, vec![vec![9u8]], 1)
                .unwrap(),
            "speculative duplicate ignored"
        );
        svc.mark_complete(1);
        let got: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(got, vec![1]);
        assert_eq!(
            metrics.shuffle_records_written.get(),
            1,
            "discarded duplicate not counted"
        );
    }

    #[test]
    fn metrics_track_volume() {
        let metrics = ClusterMetrics::new();
        let svc = ShuffleService::new(metrics.clone());
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u8, 2, 3]], 3)
            .unwrap();
        svc.mark_complete(1);
        assert_eq!(metrics.shuffle_records_written.get(), 3);
        assert_eq!(metrics.shuffle_bytes_written.get(), 3);
        let _: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(metrics.shuffle_records_read.get(), 3);
    }

    #[test]
    fn reading_unknown_shuffle_is_a_fetch_failure() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        let err = svc.read_bucket::<u8>(99, 0).unwrap_err();
        assert_eq!(
            err,
            SparkletError::FetchFailed {
                shuffle: 99,
                bucket: 0
            }
        );
    }

    #[test]
    fn reading_incomplete_shuffle_is_a_fetch_failure() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 0, 2, 1, 0, vec![vec![1u8]], 1)
            .unwrap();
        assert!(!svc.mark_complete(1), "a map output is still missing");
        let err = svc.read_bucket::<u8>(1, 0).unwrap_err();
        assert!(matches!(err, SparkletError::FetchFailed { shuffle: 1, .. }));
    }

    #[test]
    fn invalidate_executor_loses_its_outputs_only() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(5, 0, 2, 1, 0, vec![vec![1u8]], 1)
            .unwrap();
        svc.write_map_output(5, 1, 2, 1, 1, vec![vec![2u8]], 1)
            .unwrap();
        assert!(svc.mark_complete(5));
        assert_eq!(svc.invalidate_executor(1), 1);
        assert!(!svc.is_complete(5), "loss flips the shuffle incomplete");
        assert_eq!(svc.missing_maps(5), Some(vec![1]));
        let err = svc.read_bucket::<u8>(5, 0).unwrap_err();
        assert!(matches!(err, SparkletError::FetchFailed { .. }));
        // Recompute the missing map (possibly on another executor) and the
        // shuffle becomes readable again with identical content ordering.
        svc.write_map_output(5, 1, 2, 1, 0, vec![vec![2u8]], 1)
            .unwrap();
        assert!(svc.mark_complete(5));
        assert_eq!(svc.read_bucket::<u8>(5, 0).unwrap(), vec![1, 2]);
    }

    #[test]
    fn missing_maps_of_unknown_shuffle_is_none() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        assert_eq!(svc.missing_maps(42), None);
        assert_eq!(svc.invalidate_executor(3), 0);
    }

    #[test]
    fn discard_allows_clean_rerun() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u8]], 1)
            .unwrap();
        svc.discard(1);
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![2u8]], 1)
            .unwrap();
        svc.mark_complete(1);
        let got: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn read_bucket_allocates_exactly() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(9, 0, 3, 1, 0, vec![(0..100u32).collect::<Vec<_>>()], 400)
            .unwrap();
        svc.write_map_output(9, 1, 3, 1, 0, vec![(100..137u32).collect::<Vec<_>>()], 148)
            .unwrap();
        svc.write_map_output(9, 2, 3, 1, 0, vec![Vec::<u32>::new()], 0)
            .unwrap();
        assert!(svc.mark_complete(9));
        let got: Vec<u32> = svc.read_bucket(9, 0).unwrap();
        assert_eq!(got, (0..137).collect::<Vec<u32>>());
        assert_eq!(got.capacity(), got.len(), "concat must not over-allocate");
    }

    #[test]
    fn empty_buckets_read_as_empty() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(3, 0, 1, 2, 0, vec![vec![], Vec::<u64>::new()], 0)
            .unwrap();
        svc.mark_complete(3);
        let got: Vec<u64> = svc.read_bucket(3, 1).unwrap();
        assert!(got.is_empty());
    }

    fn spilling_svc(cap: usize, enabled: bool) -> (ShuffleService, ClusterMetrics, SpillManager) {
        let metrics = ClusterMetrics::new();
        let spill = SpillManager::new(2, enabled, cap, metrics.clone());
        let svc = ShuffleService::new(metrics.clone()).with_spill(spill.clone());
        (svc, metrics, spill)
    }

    #[test]
    fn over_cap_writes_spill_buckets_and_read_back_matches() {
        // Cap 64 B; each map output is 800 B of u64s, so both writes go
        // over the pool and spill. Content must round-trip in map-task
        // order regardless of tier.
        let (svc, metrics, _spill) = spilling_svc(64, true);
        let a: Vec<u64> = (0..50).collect();
        let b: Vec<u64> = (50..100).collect();
        svc.write_map_output(1, 0, 2, 2, 0, vec![a.clone(), b.clone()], 800)
            .unwrap();
        svc.write_map_output(1, 1, 2, 2, 1, vec![b.clone(), a.clone()], 800)
            .unwrap();
        assert!(svc.mark_complete(1));
        assert_eq!(metrics.buckets_spilled.get(), 4);
        assert!(metrics.spill_bytes_written.get() > 0);
        let r0: Vec<u64> = svc.read_bucket(1, 0).unwrap();
        let r1: Vec<u64> = svc.read_bucket(1, 1).unwrap();
        let mut want0 = a.clone();
        want0.extend(&b);
        let mut want1 = b.clone();
        want1.extend(&a);
        assert_eq!(r0, want0);
        assert_eq!(r1, want1);
        assert!(metrics.spill_bytes_read.get() > 0, "read back from disk");
        assert_eq!(svc.resident_bytes(0), 0, "spilled outputs hold no memory");
    }

    #[test]
    fn under_cap_writes_stay_resident() {
        let (svc, metrics, _spill) = spilling_svc(1024, true);
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u64, 2, 3]], 24)
            .unwrap();
        assert_eq!(svc.resident_bytes(0), 24);
        assert_eq!(metrics.buckets_spilled.get(), 0);
        svc.mark_complete(1);
        let got: Vec<u64> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(metrics.spill_bytes_read.get(), 0, "never touched disk");
        svc.discard(1);
        assert_eq!(svc.resident_bytes(0), 0, "discard releases the pool");
    }

    #[test]
    fn over_cap_with_spill_disabled_is_memory_exceeded() {
        let (svc, metrics, _spill) = spilling_svc(16, false);
        let err = svc
            .write_map_output(1, 0, 1, 1, 0, vec![vec![0u64; 100]], 800)
            .unwrap_err();
        assert!(matches!(err, SparkletError::MemoryExceeded { .. }));
        assert_eq!(metrics.memory_kills.get(), 1);
        assert_eq!(svc.missing_maps(1), Some(vec![0]), "nothing registered");
    }

    #[test]
    fn over_cap_without_codec_is_memory_exceeded() {
        // String has no default codec: out-of-core is impossible, the write
        // must fail rather than silently dropping data.
        let (svc, _metrics, _spill) = spilling_svc(4, true);
        let err = svc
            .write_map_output(1, 0, 1, 1, 0, vec![vec!["x".to_string(); 64]], 1024)
            .unwrap_err();
        assert!(matches!(err, SparkletError::MemoryExceeded { .. }));
    }

    #[test]
    fn dead_spill_file_surfaces_fetch_failed_and_marks_map_missing() {
        let (svc, _metrics, spill) = spilling_svc(8, true);
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![7u64; 32]], 256)
            .unwrap();
        assert!(svc.mark_complete(1));
        // The executor dies: its spill file (and the slots into it) go away.
        spill.invalidate_executor(0);
        let err = svc.read_bucket::<u64>(1, 0).unwrap_err();
        assert!(matches!(err, SparkletError::FetchFailed { .. }));
        assert!(!svc.is_complete(1), "loss flips the shuffle incomplete");
        assert_eq!(
            svc.missing_maps(1),
            Some(vec![0]),
            "exactly the dead map recomputes from lineage"
        );
    }

    #[test]
    fn invalidate_executor_releases_resident_bytes() {
        let (svc, _metrics, _spill) = spilling_svc(4096, true);
        svc.write_map_output(1, 0, 2, 1, 0, vec![vec![1u8; 100]], 100)
            .unwrap();
        svc.write_map_output(1, 1, 2, 1, 1, vec![vec![2u8; 50]], 50)
            .unwrap();
        assert_eq!(svc.resident_bytes(0), 100);
        assert_eq!(svc.resident_bytes(1), 50);
        svc.invalidate_executor(0);
        assert_eq!(svc.resident_bytes(0), 0);
        assert_eq!(svc.resident_bytes(1), 50, "survivor unaffected");
        svc.clear();
        assert_eq!(svc.resident_bytes(1), 0);
    }
}
