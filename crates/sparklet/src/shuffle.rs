//! Shuffle service: bucketed map-output storage between stages.
//!
//! A wide transformation materialises its parent by running a map stage that
//! hash-partitions every parent partition into `R` buckets and registers them
//! here; reduce-side tasks then fetch bucket `r` of every map output. In
//! Spark this crosses the network — the engine accounts the would-be network
//! volume in [`crate::metrics::ClusterMetrics`] and charges it to the virtual
//! clock instead.
//!
//! Map outputs are keyed by map-task index and tagged with the executor that
//! produced them. That gives three properties the failure domain needs:
//! reads concatenate buckets in map-task order (deterministic regardless of
//! which worker finished first), duplicate writes of the same map task are
//! ignored (a speculative clone or recomputation cannot double records), and
//! killing an executor invalidates exactly its map outputs
//! ([`ShuffleService::invalidate_executor`]) so the next read surfaces
//! [`SparkletError::FetchFailed`] and the scheduler recomputes just the
//! missing parents from lineage.

use crate::error::{Result, SparkletError};
use crate::journal::{EventKind, RunJournal};
use crate::metrics::ClusterMetrics;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Bucket = Arc<dyn Any + Send + Sync>;

/// One map task's registered output.
struct MapOutput {
    /// Executor that produced (and in real Spark would serve) the output.
    executor: usize,
    /// `buckets[r]` is the chunk destined for reduce partition `r`.
    buckets: Vec<Bucket>,
}

struct ShuffleData {
    /// `outputs[m]` is map task `m`'s output, `None` until written (or
    /// after its executor died).
    outputs: Vec<Option<MapOutput>>,
    num_reduce: usize,
    complete: bool,
}

/// Registry of all shuffles produced during a cluster's lifetime.
pub struct ShuffleService {
    shuffles: Mutex<HashMap<u64, ShuffleData>>,
    metrics: ClusterMetrics,
    journal: RunJournal,
}

impl ShuffleService {
    /// Create an empty shuffle service.
    pub fn new(metrics: ClusterMetrics) -> Self {
        ShuffleService {
            shuffles: Mutex::new(HashMap::new()),
            metrics,
            journal: RunJournal::new(),
        }
    }

    /// Share a cluster's run journal so shuffle reads/writes are journaled
    /// alongside scheduler events (builder, used by [`crate::Cluster::new`]).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = journal;
        self
    }

    /// Has `shuffle_id` been fully materialised (every map output present)?
    pub fn is_complete(&self, shuffle_id: u64) -> bool {
        self.shuffles
            .lock()
            .get(&shuffle_id)
            .map(|s| s.complete)
            .unwrap_or(false)
    }

    /// Register the output of map task `map_task` (of `num_maps`) computed
    /// on `executor`: `chunks[r]` is the data destined for reduce partition
    /// `r`. `bytes` is the estimated serialized volume (for metrics /
    /// virtual time). Keep-first: if the map task already has a live
    /// output (a speculative clone or a racing recomputation lost), the
    /// write is ignored and `false` is returned — nothing is journaled or
    /// counted for a discarded duplicate.
    #[allow(clippy::too_many_arguments)]
    pub fn write_map_output<T: Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        map_task: usize,
        num_maps: usize,
        num_reduce: usize,
        executor: usize,
        chunks: Vec<Vec<T>>,
        bytes: u64,
    ) -> bool {
        debug_assert_eq!(chunks.len(), num_reduce);
        debug_assert!(map_task < num_maps);
        let records: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        {
            let mut s = self.shuffles.lock();
            let entry = s.entry(shuffle_id).or_insert_with(|| ShuffleData {
                outputs: (0..num_maps).map(|_| None).collect(),
                num_reduce,
                complete: false,
            });
            debug_assert_eq!(entry.outputs.len(), num_maps);
            debug_assert_eq!(entry.num_reduce, num_reduce);
            if entry.outputs[map_task].is_some() {
                return false;
            }
            entry.outputs[map_task] = Some(MapOutput {
                executor,
                buckets: chunks
                    .into_iter()
                    .map(|chunk| Arc::new(chunk) as Bucket)
                    .collect(),
            });
        }
        self.metrics.shuffle_records_written.add(records);
        self.metrics.shuffle_bytes_written.add(bytes);
        self.journal.record(EventKind::ShuffleWrite {
            shuffle: shuffle_id,
            records,
            bytes,
        });
        true
    }

    /// Mark a shuffle complete. Only takes effect once every map output is
    /// present; returns whether the shuffle is complete afterwards.
    pub fn mark_complete(&self, shuffle_id: u64) -> bool {
        let mut s = self.shuffles.lock();
        match s.get_mut(&shuffle_id) {
            Some(data) => {
                data.complete = data.outputs.iter().all(Option::is_some);
                data.complete
            }
            None => false,
        }
    }

    /// Discard a shuffle entirely (used before a map stage re-materialises
    /// from scratch) so retries do not duplicate records.
    pub fn discard(&self, shuffle_id: u64) {
        self.shuffles.lock().remove(&shuffle_id);
    }

    /// Drop every map output produced by `executor` — the shuffle half of
    /// an executor kill. Affected shuffles flip back to incomplete so
    /// readers surface [`SparkletError::FetchFailed`] until the scheduler
    /// recomputes the missing maps. Returns the number of map outputs lost.
    pub fn invalidate_executor(&self, executor: usize) -> u64 {
        let mut lost = 0;
        let mut s = self.shuffles.lock();
        for data in s.values_mut() {
            for slot in data.outputs.iter_mut() {
                if slot.as_ref().is_some_and(|o| o.executor == executor) {
                    *slot = None;
                    data.complete = false;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Map tasks of `shuffle_id` whose outputs are missing, or `None` if
    /// the shuffle is not registered at all.
    pub fn missing_maps(&self, shuffle_id: u64) -> Option<Vec<usize>> {
        self.shuffles.lock().get(&shuffle_id).map(|data| {
            data.outputs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_none())
                .map(|(m, _)| m)
                .collect()
        })
    }

    /// Fetch reduce bucket `r`: the concatenation of that bucket across all
    /// map outputs, in map-task order. Errors with
    /// [`SparkletError::FetchFailed`] when the shuffle is unknown,
    /// incomplete, or any map output is gone — the recoverable condition
    /// the scheduler answers with lineage recomputation. A bucket index out
    /// of range or a type mismatch is a caller bug and still panics.
    pub fn read_bucket<T: Clone + Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        r: usize,
    ) -> Result<Vec<T>> {
        let fetch_failed = SparkletError::FetchFailed {
            shuffle: shuffle_id,
            bucket: r,
        };
        let chunks: Vec<Bucket> = {
            let s = self.shuffles.lock();
            let data = s.get(&shuffle_id).ok_or_else(|| fetch_failed.clone())?;
            if !data.complete {
                return Err(fetch_failed);
            }
            assert!(r < data.num_reduce, "bucket {r} out of range");
            let mut chunks = Vec::with_capacity(data.outputs.len());
            for output in &data.outputs {
                let output = output.as_ref().ok_or_else(|| fetch_failed.clone())?;
                chunks.push(output.buckets[r].clone());
            }
            chunks
        };
        // Downcast first, then concatenate into exactly-sized storage: one
        // allocation for the whole bucket, no doubling during the copy.
        let mut typed: Vec<Arc<Vec<T>>> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            typed.push(
                chunk
                    .downcast::<Vec<T>>()
                    .expect("shuffle bucket type mismatch"),
            );
        }
        let total: usize = typed.iter().map(|c| c.len()).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in typed {
            out.extend_from_slice(&chunk);
        }
        self.metrics.shuffle_records_read.add(out.len() as u64);
        self.journal.record(EventKind::ShuffleRead {
            shuffle: shuffle_id,
            bucket: r,
            records: out.len() as u64,
        });
        Ok(out)
    }

    /// Number of registered shuffles (diagnostics).
    pub fn shuffle_count(&self) -> usize {
        self.shuffles.lock().len()
    }

    /// Drop all shuffle data (between experiments).
    pub fn clear(&self) {
        self.shuffles.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_concatenates_in_map_order() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        // Two map tasks, two reduce partitions — written out of order.
        svc.write_map_output(7, 1, 2, 2, 0, vec![vec![4u32], vec![5, 6]], 12);
        svc.write_map_output(7, 0, 2, 2, 1, vec![vec![1u32, 2], vec![3]], 12);
        assert!(svc.mark_complete(7));
        let r0: Vec<u32> = svc.read_bucket(7, 0).unwrap();
        assert_eq!(r0, vec![1, 2, 4], "map-task order, not write order");
        let r1: Vec<u32> = svc.read_bucket(7, 1).unwrap();
        assert_eq!(r1, vec![3, 5, 6]);
    }

    #[test]
    fn duplicate_map_output_is_kept_first() {
        let metrics = ClusterMetrics::new();
        let svc = ShuffleService::new(metrics.clone());
        assert!(svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u8]], 1));
        assert!(
            !svc.write_map_output(1, 0, 1, 1, 1, vec![vec![9u8]], 1),
            "speculative duplicate ignored"
        );
        svc.mark_complete(1);
        let got: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(got, vec![1]);
        assert_eq!(
            metrics.shuffle_records_written.get(),
            1,
            "discarded duplicate not counted"
        );
    }

    #[test]
    fn metrics_track_volume() {
        let metrics = ClusterMetrics::new();
        let svc = ShuffleService::new(metrics.clone());
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u8, 2, 3]], 3);
        svc.mark_complete(1);
        assert_eq!(metrics.shuffle_records_written.get(), 3);
        assert_eq!(metrics.shuffle_bytes_written.get(), 3);
        let _: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(metrics.shuffle_records_read.get(), 3);
    }

    #[test]
    fn reading_unknown_shuffle_is_a_fetch_failure() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        let err = svc.read_bucket::<u8>(99, 0).unwrap_err();
        assert_eq!(
            err,
            SparkletError::FetchFailed {
                shuffle: 99,
                bucket: 0
            }
        );
    }

    #[test]
    fn reading_incomplete_shuffle_is_a_fetch_failure() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 0, 2, 1, 0, vec![vec![1u8]], 1);
        assert!(!svc.mark_complete(1), "a map output is still missing");
        let err = svc.read_bucket::<u8>(1, 0).unwrap_err();
        assert!(matches!(err, SparkletError::FetchFailed { shuffle: 1, .. }));
    }

    #[test]
    fn invalidate_executor_loses_its_outputs_only() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(5, 0, 2, 1, 0, vec![vec![1u8]], 1);
        svc.write_map_output(5, 1, 2, 1, 1, vec![vec![2u8]], 1);
        assert!(svc.mark_complete(5));
        assert_eq!(svc.invalidate_executor(1), 1);
        assert!(!svc.is_complete(5), "loss flips the shuffle incomplete");
        assert_eq!(svc.missing_maps(5), Some(vec![1]));
        let err = svc.read_bucket::<u8>(5, 0).unwrap_err();
        assert!(matches!(err, SparkletError::FetchFailed { .. }));
        // Recompute the missing map (possibly on another executor) and the
        // shuffle becomes readable again with identical content ordering.
        svc.write_map_output(5, 1, 2, 1, 0, vec![vec![2u8]], 1);
        assert!(svc.mark_complete(5));
        assert_eq!(svc.read_bucket::<u8>(5, 0).unwrap(), vec![1, 2]);
    }

    #[test]
    fn missing_maps_of_unknown_shuffle_is_none() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        assert_eq!(svc.missing_maps(42), None);
        assert_eq!(svc.invalidate_executor(3), 0);
    }

    #[test]
    fn discard_allows_clean_rerun() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![1u8]], 1);
        svc.discard(1);
        svc.write_map_output(1, 0, 1, 1, 0, vec![vec![2u8]], 1);
        svc.mark_complete(1);
        let got: Vec<u8> = svc.read_bucket(1, 0).unwrap();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn read_bucket_allocates_exactly() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(9, 0, 3, 1, 0, vec![(0..100u32).collect::<Vec<_>>()], 400);
        svc.write_map_output(9, 1, 3, 1, 0, vec![(100..137u32).collect::<Vec<_>>()], 148);
        svc.write_map_output(9, 2, 3, 1, 0, vec![Vec::<u32>::new()], 0);
        assert!(svc.mark_complete(9));
        let got: Vec<u32> = svc.read_bucket(9, 0).unwrap();
        assert_eq!(got, (0..137).collect::<Vec<u32>>());
        assert_eq!(got.capacity(), got.len(), "concat must not over-allocate");
    }

    #[test]
    fn empty_buckets_read_as_empty() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(3, 0, 1, 2, 0, vec![vec![], Vec::<u64>::new()], 0);
        svc.mark_complete(3);
        let got: Vec<u64> = svc.read_bucket(3, 1).unwrap();
        assert!(got.is_empty());
    }
}
