//! Shuffle service: bucketed map-output storage between stages.
//!
//! A wide transformation materialises its parent by running a map stage that
//! hash-partitions every parent partition into `R` buckets and registers them
//! here; reduce-side tasks then fetch bucket `r` of every map output. In
//! Spark this crosses the network — the engine accounts the would-be network
//! volume in [`crate::metrics::ClusterMetrics`] and charges it to the virtual
//! clock instead.

use crate::journal::{EventKind, RunJournal};
use crate::metrics::ClusterMetrics;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Bucket = Arc<dyn Any + Send + Sync>;

struct ShuffleData {
    /// `buckets[r]` holds one chunk per completed map task.
    buckets: Vec<Vec<Bucket>>,
    complete: bool,
}

/// Registry of all shuffles produced during a cluster's lifetime.
pub struct ShuffleService {
    shuffles: Mutex<HashMap<u64, ShuffleData>>,
    metrics: ClusterMetrics,
    journal: RunJournal,
}

impl ShuffleService {
    /// Create an empty shuffle service.
    pub fn new(metrics: ClusterMetrics) -> Self {
        ShuffleService {
            shuffles: Mutex::new(HashMap::new()),
            metrics,
            journal: RunJournal::new(),
        }
    }

    /// Share a cluster's run journal so shuffle reads/writes are journaled
    /// alongside scheduler events (builder, used by [`crate::Cluster::new`]).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = journal;
        self
    }

    /// Has `shuffle_id` been fully materialised?
    pub fn is_complete(&self, shuffle_id: u64) -> bool {
        self.shuffles
            .lock()
            .get(&shuffle_id)
            .map(|s| s.complete)
            .unwrap_or(false)
    }

    /// Register the output of one map task: `chunks[r]` is the data destined
    /// for reduce partition `r`. `bytes` is the estimated serialized volume
    /// (for metrics / virtual time).
    pub fn write_map_output<T: Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        num_reduce: usize,
        chunks: Vec<Vec<T>>,
        bytes: u64,
    ) {
        debug_assert_eq!(chunks.len(), num_reduce);
        let records: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        self.metrics.shuffle_records_written.add(records);
        self.metrics.shuffle_bytes_written.add(bytes);
        self.journal.record(EventKind::ShuffleWrite {
            shuffle: shuffle_id,
            records,
            bytes,
        });
        let mut s = self.shuffles.lock();
        let entry = s.entry(shuffle_id).or_insert_with(|| ShuffleData {
            buckets: (0..num_reduce).map(|_| Vec::new()).collect(),
            complete: false,
        });
        debug_assert_eq!(entry.buckets.len(), num_reduce);
        for (r, chunk) in chunks.into_iter().enumerate() {
            entry.buckets[r].push(Arc::new(chunk) as Bucket);
        }
    }

    /// Mark a shuffle complete once every map task has written.
    pub fn mark_complete(&self, shuffle_id: u64) {
        if let Some(s) = self.shuffles.lock().get_mut(&shuffle_id) {
            s.complete = true;
        }
    }

    /// Discard a partially written shuffle (used when a map stage must be
    /// re-run after failures) so retries do not duplicate records.
    pub fn discard(&self, shuffle_id: u64) {
        self.shuffles.lock().remove(&shuffle_id);
    }

    /// Fetch reduce bucket `r`: the concatenation of that bucket across all
    /// map outputs.
    pub fn read_bucket<T: Clone + Send + Sync + 'static>(
        &self,
        shuffle_id: u64,
        r: usize,
    ) -> Vec<T> {
        let chunks: Vec<Bucket> = {
            let s = self.shuffles.lock();
            let data = s
                .get(&shuffle_id)
                .unwrap_or_else(|| panic!("shuffle {shuffle_id} not materialised"));
            assert!(data.complete, "shuffle {shuffle_id} read before completion");
            data.buckets
                .get(r)
                .unwrap_or_else(|| panic!("bucket {r} out of range"))
                .clone()
        };
        let mut out = Vec::new();
        for chunk in chunks {
            let typed = chunk
                .downcast::<Vec<T>>()
                .expect("shuffle bucket type mismatch");
            out.extend_from_slice(&typed);
        }
        self.metrics.shuffle_records_read.add(out.len() as u64);
        self.journal.record(EventKind::ShuffleRead {
            shuffle: shuffle_id,
            bucket: r,
            records: out.len() as u64,
        });
        out
    }

    /// Number of registered shuffles (diagnostics).
    pub fn shuffle_count(&self) -> usize {
        self.shuffles.lock().len()
    }

    /// Drop all shuffle data (between experiments).
    pub fn clear(&self) {
        self.shuffles.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_concatenates_map_outputs() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        // Two map tasks, two reduce partitions.
        svc.write_map_output(7, 2, vec![vec![1u32, 2], vec![3]], 12);
        svc.write_map_output(7, 2, vec![vec![4u32], vec![5, 6]], 12);
        svc.mark_complete(7);
        let mut r0: Vec<u32> = svc.read_bucket(7, 0);
        r0.sort_unstable();
        assert_eq!(r0, vec![1, 2, 4]);
        let mut r1: Vec<u32> = svc.read_bucket(7, 1);
        r1.sort_unstable();
        assert_eq!(r1, vec![3, 5, 6]);
    }

    #[test]
    fn metrics_track_volume() {
        let metrics = ClusterMetrics::new();
        let svc = ShuffleService::new(metrics.clone());
        svc.write_map_output(1, 1, vec![vec![1u8, 2, 3]], 3);
        svc.mark_complete(1);
        assert_eq!(metrics.shuffle_records_written.get(), 3);
        assert_eq!(metrics.shuffle_bytes_written.get(), 3);
        let _: Vec<u8> = svc.read_bucket(1, 0);
        assert_eq!(metrics.shuffle_records_read.get(), 3);
    }

    #[test]
    #[should_panic(expected = "not materialised")]
    fn reading_unknown_shuffle_panics() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        let _: Vec<u8> = svc.read_bucket(99, 0);
    }

    #[test]
    #[should_panic(expected = "before completion")]
    fn reading_incomplete_shuffle_panics() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 1, vec![vec![1u8]], 1);
        let _: Vec<u8> = svc.read_bucket(1, 0);
    }

    #[test]
    fn discard_allows_clean_rerun() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(1, 1, vec![vec![1u8]], 1);
        svc.discard(1);
        svc.write_map_output(1, 1, vec![vec![2u8]], 1);
        svc.mark_complete(1);
        let got: Vec<u8> = svc.read_bucket(1, 0);
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn empty_buckets_read_as_empty() {
        let svc = ShuffleService::new(ClusterMetrics::new());
        svc.write_map_output(3, 2, vec![vec![], Vec::<u64>::new()], 0);
        svc.mark_complete(3);
        let got: Vec<u64> = svc.read_bucket(3, 1);
        assert!(got.is_empty());
    }
}
