//! Crate-owned keyed SipHash-1-3.
//!
//! Shuffle placement and fault injection must be deterministic across runs
//! *and* across Rust releases: lineage recomputation after cache eviction or
//! a task retry rehashes the same keys, and recorded experiment tables are
//! only reproducible if every key lands in the same bucket forever.
//! `std::collections::hash_map::DefaultHasher` explicitly does not promise a
//! stable algorithm, so the engine owns its hash function instead.
//!
//! This is the reference SipHash construction (Aumasson & Bernstein) with
//! one compression round and three finalisation rounds — the same family
//! std currently uses — but with keys fixed by this crate, so the output is
//! part of sparklet's behaviour, not the standard library's.

use std::hash::Hasher;

#[derive(Clone, Copy)]
struct State {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
}

#[inline]
fn sipround(s: &mut State) {
    s.v0 = s.v0.wrapping_add(s.v1);
    s.v1 = s.v1.rotate_left(13);
    s.v1 ^= s.v0;
    s.v0 = s.v0.rotate_left(32);
    s.v2 = s.v2.wrapping_add(s.v3);
    s.v3 = s.v3.rotate_left(16);
    s.v3 ^= s.v2;
    s.v0 = s.v0.wrapping_add(s.v3);
    s.v3 = s.v3.rotate_left(21);
    s.v3 ^= s.v0;
    s.v2 = s.v2.wrapping_add(s.v1);
    s.v1 = s.v1.rotate_left(17);
    s.v1 ^= s.v2;
    s.v2 = s.v2.rotate_left(32);
}

/// Streaming SipHash-1-3 with explicit keys.
///
/// Implements [`std::hash::Hasher`], so any `Hash` type can be routed
/// through it. Output depends only on the keys and the byte stream — never
/// on process, platform or toolchain.
#[derive(Clone)]
pub struct SipHasher13 {
    state: State,
    length: usize,
    tail: u64,
    ntail: usize,
}

impl SipHasher13 {
    /// Create a hasher keyed with `(k0, k1)`.
    pub fn new_with_keys(k0: u64, k1: u64) -> Self {
        SipHasher13 {
            state: State {
                v0: k0 ^ 0x736f_6d65_7073_6575,
                v1: k1 ^ 0x646f_7261_6e64_6f6d,
                v2: k0 ^ 0x6c79_6765_6e65_7261,
                v3: k1 ^ 0x7465_6462_7974_6573,
            },
            length: 0,
            tail: 0,
            ntail: 0,
        }
    }

    #[inline]
    fn process(&mut self, m: u64) {
        self.state.v3 ^= m;
        sipround(&mut self.state);
        self.state.v0 ^= m;
    }
}

impl Hasher for SipHasher13 {
    fn write(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        self.length += bytes.len();
        if self.ntail > 0 {
            let take = (8 - self.ntail).min(bytes.len());
            for (i, &b) in bytes[..take].iter().enumerate() {
                self.tail |= (b as u64) << (8 * (self.ntail + i));
            }
            self.ntail += take;
            bytes = &bytes[take..];
            if self.ntail < 8 {
                return;
            }
            let m = self.tail;
            self.tail = 0;
            self.ntail = 0;
            self.process(m);
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.process(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= (b as u64) << (8 * i);
            self.ntail = i + 1;
        }
    }

    fn finish(&self) -> u64 {
        let mut state = self.state;
        let b = ((self.length as u64) & 0xff) << 56 | self.tail;
        state.v3 ^= b;
        sipround(&mut state);
        state.v0 ^= b;
        state.v2 ^= 0xff;
        sipround(&mut state);
        sipround(&mut state);
        sipround(&mut state);
        state.v0 ^ state.v1 ^ state.v2 ^ state.v3
    }
}

/// Hash one `Hash` value with the crate's fixed keys. This is the function
/// behind [`crate::partitioner::HashPartitioner`] bucket assignment and the
/// deterministic fault-injection draw.
pub fn stable_hash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    // Keys are arbitrary but frozen: changing them invalidates every golden
    // bucket assignment and recorded fault pattern.
    let mut h = SipHasher13::new_with_keys(0x7061_7261_6c6c_656c, 0x6465_6475_7032_3031);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = SipHasher13::new_with_keys(1, 2);
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn split_writes_equal_one_write() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = hash_bytes(&data);
        for split in [1usize, 3, 7, 8, 9, 64, 200] {
            let mut h = SipHasher13::new_with_keys(1, 2);
            for chunk in data.chunks(split) {
                h.write(chunk);
            }
            assert_eq!(h.finish(), whole, "split at {split} must not matter");
        }
        // And a ragged three-way split straddling word boundaries.
        let mut h = SipHasher13::new_with_keys(1, 2);
        h.write(&data[..5]);
        h.write(&data[5..13]);
        h.write(&data[13..]);
        assert_eq!(h.finish(), whole);
    }

    #[test]
    fn keys_change_the_output() {
        let a = {
            let mut h = SipHasher13::new_with_keys(0, 0);
            h.write(b"sparklet");
            h.finish()
        };
        let b = {
            let mut h = SipHasher13::new_with_keys(0, 1);
            h.write(b"sparklet");
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn length_is_part_of_the_hash() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"\0"), hash_bytes(b"\0\0"));
    }

    #[test]
    fn stable_hash_golden_values() {
        // Pinned outputs: these must never change, on any platform or
        // toolchain. If this test fails, shuffle placement changed and every
        // recorded experiment table is invalidated.
        let got = [
            stable_hash(&0u64),
            stable_hash(&1u64),
            stable_hash("a"),
            stable_hash("report-pair"),
            stable_hash(&(42usize, 7u32)),
        ];
        assert_eq!(
            got,
            [
                18014270573842215101,
                2518693773388650110,
                12582029736755084646,
                12924370926309017908,
                8260932546697287409,
            ]
        );
    }
}
