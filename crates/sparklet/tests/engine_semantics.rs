//! Property-based equivalence: every sparklet operator must agree with the
//! obvious single-threaded reference implementation over `Vec`/`HashMap`,
//! for arbitrary data, partition counts and parallelism.

use proptest::prelude::*;
use sparklet::{Cluster, PairRdd};
use std::collections::HashMap;

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_filter_collect_matches_reference(
        data in prop::collection::vec(0u32..1000, 0..200),
        parts in 1usize..12,
        workers in 1usize..6,
    ) {
        let c = Cluster::local(workers);
        let got = c
            .parallelize(data.clone(), parts)
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .collect()
            .unwrap();
        let expect: Vec<u32> = data
            .iter()
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .collect();
        prop_assert_eq!(got, expect, "order must be preserved");
    }

    #[test]
    fn reduce_by_key_matches_hashmap(
        data in prop::collection::vec((0u8..10, 0u64..100), 0..150),
        parts in 1usize..8,
        reduce_parts in 1usize..8,
    ) {
        let c = Cluster::local(2);
        let got: HashMap<u8, u64> = c
            .parallelize(data.clone(), parts)
            .reduce_by_key(|a, b| a + b, reduce_parts)
            .collect()
            .unwrap()
            .into_iter()
            .collect();
        let mut expect: HashMap<u8, u64> = HashMap::new();
        for (k, v) in data {
            *expect.entry(k).or_default() += v;
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn join_matches_nested_loop(
        left in prop::collection::vec((0u8..6, 0u16..50), 0..40),
        right in prop::collection::vec((0u8..6, 0u16..50), 0..40),
        parts in 1usize..6,
    ) {
        let c = Cluster::local(2);
        let got = sorted(
            c.parallelize(left.clone(), 2)
                .join(&c.parallelize(right.clone(), 3), parts)
                .unwrap()
                .collect()
                .unwrap(),
        );
        let mut expect = Vec::new();
        for (k, v) in &left {
            for (k2, w) in &right {
                if k == k2 {
                    expect.push((*k, (*v, *w)));
                }
            }
        }
        prop_assert_eq!(got, sorted(expect));
    }

    #[test]
    fn distinct_matches_set(
        data in prop::collection::vec(0u16..40, 0..120),
        parts in 1usize..6,
    ) {
        let c = Cluster::local(2);
        let got = sorted(c.parallelize(data.clone(), parts).distinct(3).collect().unwrap());
        let expect = sorted(
            data.into_iter()
                .collect::<std::collections::HashSet<u16>>()
                .into_iter()
                .collect::<Vec<_>>(),
        );
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sort_by_matches_std_sort(
        data in prop::collection::vec(-500i32..500, 0..200),
        parts in 1usize..8,
    ) {
        let c = Cluster::local(3);
        let got = c
            .parallelize(data.clone(), parts)
            .sort_by(|x| *x, 4)
            .unwrap()
            .collect()
            .unwrap();
        prop_assert_eq!(got, sorted(data));
    }

    #[test]
    fn aggregate_is_partitioning_invariant(
        data in prop::collection::vec(0u64..1000, 1..120),
        parts_a in 1usize..9,
        parts_b in 1usize..9,
    ) {
        let c = Cluster::local(2);
        let sum = |parts: usize| {
            c.parallelize(data.clone(), parts)
                .aggregate(0u64, |a, x| a + x, |a, b| a + b)
                .unwrap()
        };
        prop_assert_eq!(sum(parts_a), sum(parts_b));
        prop_assert_eq!(sum(parts_a), data.iter().sum::<u64>());
    }

    #[test]
    fn caching_changes_nothing(
        data in prop::collection::vec(0u32..100, 0..100),
        parts in 1usize..6,
    ) {
        let c = Cluster::local(2);
        let rdd = c.parallelize(data, parts).map(|x| x + 1);
        let cached = rdd.cache();
        let once = cached.collect().unwrap();
        let twice = cached.collect().unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once, rdd.collect().unwrap());
    }

    #[test]
    fn group_by_key_partitions_preserve_multiset(
        data in prop::collection::vec((0u8..5, 0u32..30), 0..100),
    ) {
        let c = Cluster::local(2);
        let grouped = c
            .parallelize(data.clone(), 4)
            .group_by_key(3)
            .collect()
            .unwrap();
        // Flattening the groups recovers the exact input multiset.
        let mut flat: Vec<(u8, u32)> = grouped
            .into_iter()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k, v)))
            .collect();
        flat.sort();
        prop_assert_eq!(flat, sorted(data));
    }
}
