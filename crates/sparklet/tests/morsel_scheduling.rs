//! Property-based guarantees for the morsel-driven scheduler: for any
//! partitioning, morsel budget, worker count and steal setting — and under
//! injected executor kills — `run_morsel_job` must return bit-identical
//! output in (partition, element) order. Stealing and splitting are pure
//! scheduling decisions; they may move virtual time around but can never
//! change a byte of the result.

use proptest::prelude::*;
use sparklet::{Cluster, ClusterConfig, EventKind, FaultConfig, SchedConfig};

/// Reference result: what the job computes, independent of any scheduling.
fn reference(partitions: &[Vec<u32>]) -> Vec<Vec<u64>> {
    partitions
        .iter()
        .enumerate()
        .map(|(p, part)| part.iter().map(|&x| u64::from(x) * 3 + p as u64).collect())
        .collect()
}

fn run(
    partitions: Vec<Vec<u32>>,
    workers: usize,
    sched: SchedConfig,
    fault: FaultConfig,
) -> sparklet::Result<Vec<Vec<u64>>> {
    let mut config = ClusterConfig::local(workers);
    config.sched = sched;
    config.fault = fault;
    let cluster = Cluster::new(config);
    cluster.run_morsel_job(
        "morsel-prop",
        partitions,
        |&x| u64::from(x % 97) + 1,
        |p, items, ctx| {
            ctx.charge_ops(items.len() as u64);
            Ok(items.iter().map(|&x| u64::from(x) * 3 + p as u64).collect())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: any (budget, steal, workers) combination
    /// reproduces the static single-task-per-partition result exactly.
    #[test]
    fn morsel_output_is_bit_identical_to_static(
        partitions in prop::collection::vec(
            prop::collection::vec(0u32..10_000, 0..60), 0..10),
        budget in 0u64..2_000,
        steal in prop::bool::ANY,
        workers in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let expect = reference(&partitions);
        // budget 0 doubles as "no splitting" — one morsel per partition.
        let morsel_ops = if budget == 0 { u64::MAX } else { budget };
        let sched = SchedConfig { morsel_ops, steal };
        let got = run(partitions.clone(), workers, sched, FaultConfig::disabled()).unwrap();
        prop_assert_eq!(&got, &expect, "scheduling changed the output");
        let static_got = run(
            partitions,
            workers,
            SchedConfig::static_placement(),
            FaultConfig::disabled(),
        )
        .unwrap();
        prop_assert_eq!(got, static_got, "morsel run diverged from static placement");
    }

    /// Same invariant under chaos: a mid-stage executor kill (lost wave
    /// results, rescheduled morsels, possibly a retried attempt) must leave
    /// the reassembled output untouched.
    #[test]
    fn morsel_output_survives_executor_kills(
        partitions in prop::collection::vec(
            prop::collection::vec(0u32..10_000, 1..40), 1..8),
        morsel_ops in 1u64..1_500,
        steal in prop::bool::ANY,
        workers in prop::sample::select(vec![2usize, 8]),
        victim in 0usize..8,
        after in 0usize..6,
    ) {
        let expect = reference(&partitions);
        let sched = SchedConfig { morsel_ops, steal };
        let fault = FaultConfig::disabled().kill_in_stage(
            victim % workers,
            "morsel-prop",
            after,
        );
        let got = run(partitions, workers, sched, fault).unwrap();
        prop_assert_eq!(got, expect, "a kill changed the output");
    }
}

/// Satellite #6 regression: on a run with ~100k pairs of work split into
/// hundreds of morsels, the journal must stay bounded — steal events
/// coalesce to one per (thief, victim) edge per stage and idle events to
/// one per worker per stage, so journal growth is O(stages · workers²),
/// never O(morsels).
#[test]
fn journal_stays_bounded_on_a_hundred_thousand_pair_run() {
    const WORKERS: usize = 8;
    // 100_000 unit-weight items over a deliberately skewed partitioning:
    // one hot partition with half the work, the rest spread thin. Budget
    // 256 ops → ~400 morsels.
    let mut partitions = vec![(0..50_000u32).collect::<Vec<_>>()];
    for p in 0..10 {
        partitions.push((0..5_000u32).map(|i| i + p).collect());
    }
    let mut config = ClusterConfig::local(WORKERS);
    config.sched = SchedConfig {
        morsel_ops: 256,
        steal: true,
    };
    let cluster_cfg = Cluster::new(config);
    let out = cluster_cfg
        .run_morsel_job(
            "hundred-k",
            partitions.clone(),
            |_| 1,
            |_, items, ctx| {
                ctx.charge_ops(items.len() as u64);
                Ok(vec![items.len() as u64])
            },
        )
        .unwrap();
    assert_eq!(out.len(), partitions.len());
    let report = cluster_cfg.job_report();
    assert!(
        report.sched.morsels >= 300,
        "expected hundreds of morsels, got {}",
        report.sched.morsels
    );
    let events = cluster_cfg.journal().events();
    let steal_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MorselStolen { .. }))
        .count();
    let idle_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerIdle { .. }))
        .count();
    assert!(
        steal_events <= WORKERS * WORKERS,
        "steal events must coalesce per (thief, victim) edge: {steal_events}"
    );
    assert!(
        idle_events <= WORKERS,
        "idle events must coalesce per worker: {idle_events}"
    );
    assert!(
        events.len() < 200,
        "journal must stay bounded on a morsel-heavy run: {} events",
        events.len()
    );
}
