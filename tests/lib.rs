//! This package only hosts the workspace integration tests (see the
//! `[[test]]` targets in `Cargo.toml`).
