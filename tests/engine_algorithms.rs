//! Cross-crate algorithmic invariants: the distributed classifier against
//! serial references, under engine stress (fault injection, tiny memory).

use fastknn::serial::{classify_brute, classify_fast_serial};
use fastknn::voronoi::VoronoiPartition;
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, UnlabeledPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::{Cluster, ClusterConfig, FaultConfig};

fn workload<const D: usize>(
    n_neg: usize,
    n_pos: usize,
    n_test: usize,
    seed: u64,
) -> (Vec<LabeledPair<D>>, Vec<UnlabeledPair<D>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::new();
    for i in 0..n_neg {
        let v: [f64; D] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
        train.push(LabeledPair::new(i as u64, v, false));
    }
    for i in 0..n_pos {
        let v: [f64; D] = std::array::from_fn(|_| rng.gen_range(0.0..0.2));
        train.push(LabeledPair::new((n_neg + i) as u64, v, true));
    }
    let test = (0..n_test)
        .map(|i| {
            let v: [f64; D] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            UnlabeledPair::new(i as u64, v)
        })
        .collect();
    (train, test)
}

#[test]
fn distributed_equals_serial_equals_brute_under_fault_injection() {
    let (train, test) = workload::<4>(600, 15, 60, 77);
    // A flaky cluster: 20% of task attempts fail and are retried.
    let mut config = ClusterConfig::local(4);
    config.fault = FaultConfig::with_probability(0.2, 9);
    config.max_task_attempts = 10;
    let cluster = Cluster::new(config);
    let knn_config = FastKnnConfig {
        k: 7,
        b: 10,
        c: 3,
        theta: 0.0,
        seed: 4,
        prune: true,
    };
    let model = FastKnn::fit(&cluster, &train, knn_config).expect("fit");
    let distributed = model.classify(&test).expect("classify");
    assert!(
        cluster.metrics().tasks_failed.get() > 0,
        "fault injection should have fired"
    );

    let vp = VoronoiPartition::build(&train, 10, 4);
    let serial = classify_fast_serial(&vp, &test, 7, 0.0);
    let brute = classify_brute(&train, &test, 7, 0.0);
    for ((d, s), b) in distributed.iter().zip(&serial).zip(&brute) {
        assert_eq!(d.id, s.id);
        assert_eq!(
            d.positive, b.positive,
            "distributed label must match brute force at id {} even with retries",
            d.id
        );
        assert_eq!(d.positive, s.positive);
        if !d.shortcut {
            assert!((d.score - b.score).abs() < 1e-9, "score at id {}", d.id);
        }
    }
}

#[test]
fn tiny_executor_memory_still_classifies_correctly() {
    let (train, test) = workload::<4>(2_000, 20, 40, 13);
    let mut config = ClusterConfig::local(2);
    // Budget far below one joined partition: every stage-1 task thrashes,
    // retries, and eventually completes (hold_memory's graduated model).
    config.memory_per_executor = 4 * 1024;
    let cluster = Cluster::new(config);
    let model = FastKnn::fit(
        &cluster,
        &train,
        FastKnnConfig {
            k: 5,
            b: 4,
            c: 2,
            theta: 0.0,
            seed: 2,
            prune: true,
        },
    )
    .expect("fit");
    let out = model.classify(&test).expect("classify despite thrash");
    assert!(cluster.metrics().memory_kills.get() > 0, "should thrash");
    let brute = classify_brute(&train, &test, 5, 0.0);
    for (d, b) in out.iter().zip(&brute) {
        assert_eq!(d.positive, b.positive);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Label equivalence between distributed Fast kNN and brute force over
    /// randomised workload shapes and partitioning.
    #[test]
    fn distributed_label_equivalence(
        seed in 0u64..1000,
        b in 2usize..12,
        k in prop::sample::select(vec![3usize, 5, 7]),
    ) {
        let (train, test) = workload::<3>(300, 10, 25, seed);
        let cluster = Cluster::local(2);
        let model = FastKnn::fit(
            &cluster,
            &train,
            FastKnnConfig { k, b, c: 2, theta: 0.0, seed, prune: true },
        ).expect("fit");
        let fast = model.classify(&test).expect("classify");
        let brute = classify_brute(&train, &test, k, 0.0);
        for (f, g) in fast.iter().zip(&brute) {
            prop_assert_eq!(f.positive, g.positive, "id {}", f.id);
        }
    }
}
