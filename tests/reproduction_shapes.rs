//! Small-scale shape checks of the paper's headline results — the same
//! claims the full benches regenerate, asserted as tests so CI guards the
//! reproduction.
//!
//! Methodology notes (mirroring `crates/bench`):
//! * quality shapes (Fig. 5) need the TGA-scale corpus geometry and the
//!   paper's label imbalance, so that test builds the full corpus once;
//! * scalability shapes (Figs. 7–10) test on *uniformly random* pairs, as
//!   the paper does — a uniform sample is ~99.99% non-duplicate, which is
//!   what makes the cross/intra comparison ratio small;
//! * execution times are virtual-clock makespans under a paper-scaled cost
//!   model (see DESIGN.md).

use adr_synth::{Dataset, SynthConfig};
use dedup::svm_scores;
use dedup::workload::{build_workload_on, uniform_test_pairs, ProcessedCorpus};
use fastknn::{counters, FastKnn, FastKnnConfig, LabeledPair, TestPruner};
use mlcore::average_precision;
use mlcore::svm::SvmConfig;
use sparklet::{Cluster, CostModelConfig};
use std::collections::HashMap;
use std::sync::OnceLock;

fn small_corpus() -> &'static ProcessedCorpus {
    static C: OnceLock<ProcessedCorpus> = OnceLock::new();
    C.get_or_init(|| ProcessedCorpus::new(Dataset::generate(&SynthConfig::small(1_500, 75, 17))))
}

fn tga_corpus() -> &'static ProcessedCorpus {
    static C: OnceLock<ProcessedCorpus> = OnceLock::new();
    C.get_or_init(|| ProcessedCorpus::new(Dataset::generate(&SynthConfig::tga())))
}

/// Cost model whose virtual time is dominated by comparisons, not task
/// overhead, at test scale (the bench uses the same idea via PAPER_SCALE).
fn scaled_cost() -> CostModelConfig {
    CostModelConfig {
        op_ns: 400 * 50,
        task_launch_overhead_us: 500,
        coordination_us_per_executor: 200,
        ..CostModelConfig::default()
    }
}

fn knn_aupr(w: &dedup::workload::PairWorkload, b: usize) -> f64 {
    let cluster = Cluster::local(2);
    let model = FastKnn::fit(
        &cluster,
        &w.train,
        FastKnnConfig {
            b,
            ..FastKnnConfig::default()
        },
    )
    .expect("fit");
    let scored = model.classify(&w.test).expect("classify");
    let by_id: HashMap<u64, f64> = scored.iter().map(|s| (s.id, s.score)).collect();
    let scores: Vec<f64> = w.test.iter().map(|t| by_id[&t.id]).collect();
    average_precision(&w.scored(&scores))
}

#[test]
fn fig5_shape_knn_beats_the_svm_baseline_at_paper_imbalance() {
    // The paper's regime: ~0.03% positive training pairs (their 1M-pair set
    // holds 266 duplicates). The TGA-scale corpus reproduces the geometry.
    let w = build_workload_on(tga_corpus(), 50_000, 1_500, 17);
    let knn = knn_aupr(&w, 32);
    let svm = svm_scores(&w.train, &w.test, &SvmConfig::default());
    let by_id: HashMap<u64, f64> = svm.into_iter().collect();
    let svm_scores_v: Vec<f64> = w.test.iter().map(|t| by_id[&t.id]).collect();
    let svm_ap = average_precision(&w.scored(&svm_scores_v));
    assert!(
        knn > svm_ap,
        "Fig 5 shape: kNN ({knn:.3}) must beat the SGD SVM baseline ({svm_ap:.3})"
    );
    assert!(
        knn > 0.85,
        "kNN should be strong in absolute terms: {knn:.3}"
    );
}

#[test]
fn fig7_8_shape_comparisons_fall_with_b_and_cross_stays_marginal() {
    let w = build_workload_on(small_corpus(), 8_000, 300, 19);
    // Uniform test pairs, as in the paper's Figs. 7/8.
    let test = uniform_test_pairs(small_corpus(), 400, 19);
    let run_at = |b: usize| {
        let cluster = Cluster::local(2);
        let model = FastKnn::fit(
            &cluster,
            &w.train,
            FastKnnConfig {
                b,
                ..FastKnnConfig::default()
            },
        )
        .expect("fit");
        cluster.metrics().reset();
        let _ = model.classify(&test).expect("classify");
        (
            cluster.metrics().counter(counters::INTRA_COMPARISONS).get(),
            cluster.metrics().counter(counters::CROSS_COMPARISONS).get(),
            cluster.metrics().counter(counters::SHORTCUT_SKIPS).get(),
        )
    };
    let (intra_small_b, _, _) = run_at(5);
    let (intra_large_b, cross_large_b, shortcuts) = run_at(40);
    assert!(
        intra_large_b < intra_small_b,
        "Fig 7(a) shape: {intra_small_b} -> {intra_large_b}"
    );
    // Fig 8(a) shape: on uniform pairs, cross-cluster work is marginal
    // because the all-negative shortcut resolves almost everything.
    assert!(
        (cross_large_b as f64) < 0.30 * intra_large_b as f64,
        "cross ({cross_large_b}) should stay well below intra ({intra_large_b})"
    );
    assert!(
        shortcuts as f64 > 0.9 * test.len() as f64,
        "uniform pairs should overwhelmingly shortcut: {shortcuts}/{}",
        test.len()
    );
}

#[test]
fn fig9_shape_virtual_time_grows_sublinearly_with_training_size() {
    let test = uniform_test_pairs(small_corpus(), 300, 23);
    let time_at = |train_pairs: usize| {
        let w = build_workload_on(small_corpus(), train_pairs, 200, 23);
        let cluster = Cluster::local(2);
        // Figure 9 charts the paper's engine, which scans whole cells; the
        // bound-driven pruning layer (DESIGN.md §13) makes classification
        // time nearly independent of training size, so the shape is pinned
        // with pruning off.
        let model = FastKnn::fit(
            &cluster,
            &w.train,
            FastKnnConfig {
                b: 16,
                prune: false,
                ..FastKnnConfig::default()
            },
        )
        .expect("fit");
        cluster.reset_run_state();
        let _ = model.classify(&test).expect("classify");
        cluster.clock().makespan(25, 1, &scaled_cost()).us as f64
    };
    let t1 = time_at(8_000);
    let t5 = time_at(40_000);
    let growth = t5 / t1;
    assert!(
        growth > 1.05,
        "5x data must cost more time, got {growth:.2}x"
    );
    assert!(
        growth < 5.0,
        "Fig 9 shape: growth must be sublinear in data (paper: 1.4-2.1x), got {growth:.2}x"
    );
}

#[test]
fn fig10_shape_virtual_time_falls_with_executors_but_sublinearly() {
    let w = build_workload_on(small_corpus(), 10_000, 200, 29);
    let test = uniform_test_pairs(small_corpus(), 300, 29);
    let cluster = Cluster::local(2);
    let model = FastKnn::fit(
        &cluster,
        &w.train,
        FastKnnConfig {
            b: 16,
            ..FastKnnConfig::default()
        },
    )
    .expect("fit");
    cluster.reset_run_state();
    let _ = model.classify(&test).expect("classify");
    let cost = scaled_cost();
    let t5 = cluster.clock().makespan(5, 1, &cost).us as f64;
    let t20 = cluster.clock().makespan(20, 1, &cost).us as f64;
    assert!(t20 < t5, "more executors must be faster: {t5} vs {t20}");
    assert!(
        t5 / t20 < 4.0,
        "speedup must flatten below the 4x ideal, got {:.2}x",
        t5 / t20
    );
}

#[test]
fn fig11_shape_pruning_keeps_every_wide_radius_duplicate() {
    let w = build_workload_on(small_corpus(), 10_000, 2_000, 31);
    let positives: Vec<LabeledPair> = w.train.iter().filter(|p| p.positive).cloned().collect();
    let pruner = TestPruner::build(&positives, 10, 31);
    let mut last_kept = 0usize;
    for f in [0.3, 0.5, 0.7, 0.9] {
        let outcome = pruner.prune(&w.test, f);
        assert!(outcome.kept.len() >= last_kept, "monotone keep in f(θ)");
        last_kept = outcome.kept.len();
    }
    // Wide setting: all true duplicates retained.
    let outcome = pruner.prune(&w.test, 0.9);
    let kept: std::collections::HashSet<u64> = outcome.kept.iter().map(|t| t.id).collect();
    for (t, &truth) in w.test.iter().zip(&w.truth) {
        if truth {
            assert!(kept.contains(&t.id), "duplicate {} pruned at f=0.9", t.id);
        }
    }
}
