//! Chaos suite: injected executor failures must never change what the
//! pipeline computes.
//!
//! Every test here runs the same seeded bootstrap + `detect_new` batch as
//! `refactor_baseline.rs` under a different failure schedule — executors
//! killed between stages, killed mid-stage, random task faults, speculative
//! execution — and asserts the detections are **bit-identical** to the
//! fault-free run (same pinned digest). Recovery is allowed to cost virtual
//! time; it is never allowed to change a score, a label, or the output
//! order. The only acceptable divergence is a clean error when the failure
//! schedule leaves no healthy executor to run on.

use adr_model::{AdrReport, PairId};
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use sparklet::{
    stable_hash, Cluster, ClusterConfig, FaultConfig, JobReport, SchedConfig, SparkletError,
};

/// The fault-free `detect_new` digest pinned in `refactor_baseline.rs`.
const BASELINE_DIGEST: u64 = 11028548671881665013;

fn corpus() -> (Vec<AdrReport>, Vec<PairId>, Vec<AdrReport>) {
    let ds = Dataset::generate(&SynthConfig::small(300, 18, 77));
    let cut = 280;
    let historical = ds.reports[..cut].to_vec();
    let labelled = ds
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let arriving = ds.reports[cut..].to_vec();
    (historical, labelled, arriving)
}

struct ChaosRun {
    digest: u64,
    report: JobReport,
}

/// Run the full pipeline on `config`, returning the detection digest and
/// the job report (recovery section included).
fn run_pipeline(config: ClusterConfig) -> sparklet::Result<ChaosRun> {
    let (historical, labelled, arriving) = corpus();
    let cluster = Cluster::new(config);
    let handle = cluster.clone();
    let mut dcfg = DedupConfig::default();
    dcfg.knn.b = 8;
    dcfg.bootstrap_negatives = 400;
    let mut system = DedupSystem::new(cluster, dcfg);
    system.bootstrap(&historical, &labelled)?;
    let detections = system.detect_new(&arriving)?;
    let records: Vec<(u64, u64, u64, bool)> = detections
        .iter()
        .map(|d| (d.pair.lo, d.pair.hi, d.score.to_bits(), d.is_duplicate))
        .collect();
    Ok(ChaosRun {
        digest: stable_hash(&records),
        report: handle.job_report(),
    })
}

fn chaos_config(fault: FaultConfig) -> ClusterConfig {
    let mut config = ClusterConfig::local(4);
    config.fault = fault;
    config
}

#[test]
fn fault_free_run_matches_the_pinned_digest_and_reports_no_recovery() {
    let run = run_pipeline(ClusterConfig::local(4)).expect("fault-free run");
    assert_eq!(run.digest, BASELINE_DIGEST, "fault-free output drifted");
    assert!(
        !run.report.recovery.any(),
        "fault-free run logged recovery work: {:?}",
        run.report.recovery
    );
}

#[test]
fn executor_kills_between_stages_leave_detections_bit_identical() {
    let baseline = run_pipeline(ClusterConfig::local(4)).expect("baseline run");
    let total = baseline.report.virtual_us;
    // Kill three of the four executors at the quarter points of the
    // fault-free timeline; each restarts with a fresh incarnation, loses
    // its cached blocks and its shuffle map outputs.
    let fault = FaultConfig::disabled()
        .kill_at_time(1, total / 4)
        .kill_at_time(2, total / 2)
        .kill_at_time(3, 3 * total / 4);
    let chaos = run_pipeline(chaos_config(fault)).expect("chaos run");
    assert_eq!(chaos.digest, BASELINE_DIGEST, "kills changed the output");
    assert_eq!(chaos.report.recovery.executors_lost, 3);
    assert_eq!(chaos.report.recovery.executors_blacklisted, 0);
    assert!(
        chaos.report.virtual_us >= baseline.report.virtual_us,
        "recovery cannot make the job faster ({} < {})",
        chaos.report.virtual_us,
        baseline.report.virtual_us
    );
}

#[test]
fn mid_stage_kill_recovers_lost_work_without_output_drift() {
    // Kill executor 0 while a detect_new map-output stage is in flight:
    // its unprocessed wave results go stale (lost tasks, rescheduled on
    // survivors) and any bucket files it already wrote are invalidated and
    // recomputed from lineage.
    let fault =
        FaultConfig::disabled().kill_in_stage(0, "shuffle#4-write[map_partitions_with_ctx]", 1);
    let chaos = run_pipeline(chaos_config(fault)).expect("chaos run");
    assert_eq!(
        chaos.digest, BASELINE_DIGEST,
        "mid-stage kill changed output"
    );
    let rec = &chaos.report.recovery;
    assert_eq!(rec.executors_lost, 1);
    assert!(
        rec.tasks_lost + rec.recomputed_map_tasks >= 1,
        "the kill should have cost lost or recomputed work: {rec:?}"
    );
}

#[test]
fn random_task_faults_are_absorbed_without_output_drift() {
    for seed in [11, 22, 33] {
        let fault = FaultConfig::with_probability(0.05, seed);
        let chaos = run_pipeline(chaos_config(fault)).expect("faulty run");
        assert!(
            chaos.report.totals.tasks_failed > 0,
            "seed {seed} injected no faults"
        );
        assert_eq!(
            chaos.digest, BASELINE_DIGEST,
            "seed {seed}: retries changed the output"
        );
    }
}

#[test]
fn speculation_produces_identical_output() {
    // Injected failures make the retried tasks stragglers (each failed
    // attempt costs a 10 s virtual penalty), so speculation has real clones
    // to launch — and their winners must not perturb the detections.
    let mut config = chaos_config(FaultConfig::with_probability(0.02, 7));
    config.speculation = true;
    let chaos = run_pipeline(config).expect("speculative run");
    assert_eq!(chaos.digest, BASELINE_DIGEST, "speculation changed output");
    let rec = &chaos.report.recovery;
    assert!(
        rec.speculative_launched >= 1,
        "no speculative clones launched: {rec:?}"
    );
    assert!(rec.speculative_wins <= rec.speculative_launched);
}

#[test]
fn static_placement_matches_the_pinned_digest() {
    // Turning morsel splitting and stealing off entirely must reproduce the
    // same detections bit for bit: scheduling is virtual-time-only, never
    // output-visible.
    let mut config = ClusterConfig::local(4);
    config.sched = SchedConfig::static_placement();
    let run = run_pipeline(config).expect("static run");
    assert_eq!(run.digest, BASELINE_DIGEST, "static placement drifted");
}

#[test]
fn stealing_under_executor_kills_matches_the_pinned_digest() {
    // The steal schedule is replayed over per-morsel costs, which injected
    // kills perturb (lost attempts accumulate cost) — the output still may
    // not move. One run with stealing forced on, one forced off, both under
    // the same mid-stage kill.
    for steal in [true, false] {
        let mut config = chaos_config(FaultConfig::disabled().kill_in_stage(
            0,
            "shuffle#4-write[map_partitions_with_ctx]",
            1,
        ));
        config.sched = SchedConfig {
            steal,
            ..SchedConfig::default()
        };
        let chaos = run_pipeline(config).expect("chaos run");
        assert_eq!(
            chaos.digest, BASELINE_DIGEST,
            "steal={steal} under kills changed the output"
        );
        assert_eq!(chaos.report.recovery.executors_lost, 1);
    }
}

/// Executor memory small enough that the pipeline's shuffles overflow the
/// resident pool ([`sparklet::SpillConfig::shuffle_fraction`] of it) on
/// every classification stage — the out-of-core forcing knob.
const SPILL_FORCING_MEMORY: usize = 64 << 10;

#[test]
fn spill_forced_run_matches_the_pinned_digest() {
    // Shrink executor memory until shuffle writes must overflow to disk;
    // the detections must not move by a bit, and the job report must show
    // the disk tier actually absorbed traffic both ways.
    let mut config = ClusterConfig::local(4);
    config.memory_per_executor = SPILL_FORCING_MEMORY;
    let run = run_pipeline(config).expect("spill-forced run");
    assert_eq!(run.digest, BASELINE_DIGEST, "spill changed the output");
    let spill = &run.report.spill;
    assert!(spill.bytes_spilled > 0, "cap never overflowed: {spill:?}");
    assert!(spill.bytes_read_back > 0, "spilled buckets never read back");
    assert!(spill.spill_files > 0);
    assert!(
        spill.peak_resident.iter().any(|&p| p > 0),
        "resident accounting never moved: {spill:?}"
    );
}

#[test]
fn same_cap_with_spill_disabled_aborts_with_memory_exceeded() {
    // The regression the disk tier exists to fix: before spill, a shuffle
    // that outgrew executor memory had nowhere to go. With spill turned off
    // the same cap must still abort — cleanly, after exhausting retries.
    let mut config = ClusterConfig::local(4);
    config.memory_per_executor = SPILL_FORCING_MEMORY;
    config.spill = sparklet::SpillConfig::disabled();
    match run_pipeline(config) {
        Err(SparkletError::TaskFailed { reason, .. }) => {
            assert!(
                reason.contains("exceeded executor budget"),
                "abort must come from the memory cap, got: {reason}"
            );
        }
        Ok(run) => panic!("capped run without spill completed (digest {})", run.digest),
        Err(other) => panic!("expected TaskFailed from the memory cap, got {other:?}"),
    }
}

#[test]
fn spill_under_executor_kills_matches_the_pinned_digest() {
    // The disk tier is executor-local: a kill deletes the spill file and
    // orphans its slots, so fetches of spilled buckets surface FetchFailed
    // and lineage recomputes the lost map outputs. Output still must not
    // move, even with spill forced on every stage.
    let baseline = run_pipeline(ClusterConfig::local(4)).expect("baseline run");
    let total = baseline.report.virtual_us;
    let mut config = chaos_config(
        FaultConfig::disabled()
            .kill_at_time(1, total / 4)
            .kill_at_time(2, total / 2),
    );
    config.memory_per_executor = SPILL_FORCING_MEMORY;
    let chaos = run_pipeline(config).expect("spill + kills run");
    assert_eq!(
        chaos.digest, BASELINE_DIGEST,
        "kills with spill on changed the output"
    );
    assert_eq!(chaos.report.recovery.executors_lost, 2);
    assert!(chaos.report.spill.bytes_spilled > 0, "spill never engaged");
}

#[test]
fn spill_under_work_stealing_matches_the_pinned_digest() {
    // Morsel stealing changes which worker writes (and therefore spills)
    // each bucket; the spilled bytes' contents — and the detections — must
    // not depend on that placement.
    for steal in [true, false] {
        let mut config = ClusterConfig::local(4);
        config.memory_per_executor = SPILL_FORCING_MEMORY;
        config.sched = SchedConfig {
            steal,
            ..SchedConfig::default()
        };
        let run = run_pipeline(config).expect("spill + steal run");
        assert_eq!(
            run.digest, BASELINE_DIGEST,
            "steal={steal} with spill on changed the output"
        );
        assert!(run.report.spill.bytes_spilled > 0);
    }
}

#[test]
fn killing_every_executor_fails_the_job_with_a_clean_error() {
    let mut config = ClusterConfig::local(2);
    config.fault = FaultConfig::disabled()
        .kill_at_time(0, 0)
        .kill_at_time(1, 0);
    config.fault.max_executor_failures = 1; // first kill blacklists
    match run_pipeline(config) {
        Err(SparkletError::NoHealthyExecutors { stage }) => {
            assert!(!stage.is_empty());
        }
        other => panic!(
            "expected NoHealthyExecutors, got {other:?}",
            other = other.map(|r| r.digest)
        ),
    }
}
