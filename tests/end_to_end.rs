//! End-to-end integration: corpus generation → text processing → pairwise
//! distances → Fast kNN classification → feedback, across all crates.

use adr_model::{AdrReport, PairId};
use adr_synth::{Dataset, SynthConfig};
use dedup::workload::build_workload;
use dedup::{DedupConfig, DedupSystem};
use fastknn::{FastKnn, FastKnnConfig};
use mlcore::average_precision;
use sparklet::Cluster;
use std::collections::HashMap;

#[test]
fn full_pipeline_detects_most_injected_duplicates() {
    let corpus = Dataset::generate(&SynthConfig::small(600, 30, 99));
    let workload = build_workload(&corpus, 4_000, 400, 99);
    let cluster = Cluster::local(4);
    let model = FastKnn::fit(
        &cluster,
        &workload.train,
        FastKnnConfig {
            b: 12,
            ..FastKnnConfig::default()
        },
    )
    .expect("fit");
    let scored = model.classify(&workload.test).expect("classify");
    let by_id: HashMap<u64, f64> = scored.iter().map(|s| (s.id, s.score)).collect();
    let scores: Vec<f64> = workload.test.iter().map(|t| by_id[&t.id]).collect();
    let ap = average_precision(&workload.scored(&scores));
    assert!(
        ap > 0.75,
        "end-to-end AUPR should be strong on a small corpus, got {ap}"
    );
}

#[test]
fn dedup_system_feedback_loop_grows_and_detects() {
    let corpus = Dataset::generate(&SynthConfig::small(400, 20, 5));
    let cut = 380;
    let historical: Vec<AdrReport> = corpus.reports[..cut].to_vec();
    let labelled: Vec<PairId> = corpus
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let cluster = Cluster::local(2);
    let mut config = DedupConfig::default();
    config.knn.b = 8;
    config.bootstrap_negatives = 500;
    let mut system = DedupSystem::new(cluster, config);
    system.bootstrap(&historical, &labelled).expect("bootstrap");

    let dup_count_before = system.store().duplicate_count();
    let arriving: Vec<AdrReport> = corpus.reports[cut..].to_vec();
    let detections = system.detect_new(&arriving).expect("detect");
    assert!(!detections.is_empty());
    // Every candidate decision fed back into the stores.
    assert!(
        system.store().duplicate_count() >= dup_count_before,
        "labelled duplicate store must never shrink"
    );
    // Detections reference only known reports.
    for d in &detections {
        assert!(d.pair.hi < corpus.reports.len() as u64);
    }
}

#[test]
fn determinism_across_full_runs() {
    let run = || {
        let corpus = Dataset::generate(&SynthConfig::small(300, 15, 1));
        let workload = build_workload(&corpus, 2_000, 200, 1);
        let cluster = Cluster::local(3);
        let model = FastKnn::fit(
            &cluster,
            &workload.train,
            FastKnnConfig {
                b: 8,
                ..FastKnnConfig::default()
            },
        )
        .expect("fit");
        model
            .classify(&workload.test)
            .expect("classify")
            .iter()
            .map(|s| (s.id, s.score.to_bits(), s.positive))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "whole pipeline must be bit-deterministic");
}

#[test]
fn engine_metrics_trace_the_whole_pipeline() {
    let corpus = Dataset::generate(&SynthConfig::small(300, 15, 2));
    let workload = build_workload(&corpus, 2_000, 200, 2);
    let cluster = Cluster::local(2);
    let model = FastKnn::fit(&cluster, &workload.train, FastKnnConfig::default()).expect("fit");
    let _ = model.classify(&workload.test).expect("classify");
    let m = cluster.metrics();
    assert!(m.jobs_submitted.get() > 0);
    assert!(m.tasks_succeeded.get() > 0);
    assert!(m.shuffle_records_written.get() > 0);
    assert!(m.counter(fastknn::counters::INTRA_COMPARISONS).get() > 0);
    assert!(cluster.virtual_elapsed().us > 0);
}
