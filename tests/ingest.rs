//! Chaos suite for the durable streaming-ingest service (`dedup::ingest`).
//!
//! The contract under test is *lossless recovery*: a driver crash at any
//! fault point, a torn checkpoint write, a poisoned batch or a transient
//! engine fault must leave the service able to reach the exact cumulative
//! detection digest of an undisturbed run. The digest folds every
//! detection of every committed batch (pair ids, score bits, decision), so
//! bit-identity here is bit-identity of the system's entire output.

use adr_synth::{QuarterlyReplay, StreamingCorpus, SynthConfig};
use dedup::{DedupConfig, IngestConfig, IngestService, TornWrite};
use fastknn::FastKnnConfig;
use sparklet::{Cluster, ClusterConfig, FaultConfig};
use std::path::PathBuf;

fn replay(reports: usize, dups: usize, seed: u64, quarter: u64) -> QuarterlyReplay {
    QuarterlyReplay::new(
        StreamingCorpus::new(SynthConfig::small(reports, dups, seed)),
        quarter,
    )
}

fn dedup_config() -> DedupConfig {
    DedupConfig {
        bootstrap_negatives: 250,
        use_blocking: true,
        knn: FastKnnConfig {
            theta: 0.0,
            b: 8,
            ..FastKnnConfig::default()
        },
        ..DedupConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ingest-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the whole replay on a fresh directory and return the digest.
fn reference_digest(rp: &QuarterlyReplay, tag: &str) -> u64 {
    let dir = temp_dir(tag);
    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        rp,
    )
    .expect("open fresh");
    svc.run(rp, rp.quarters()).expect("uninterrupted run");
    let digest = svc.cumulative_digest();
    let _ = std::fs::remove_dir_all(&dir);
    digest
}

#[test]
fn uninterrupted_runs_share_one_digest() {
    let rp = replay(160, 10, 42, 40);
    let a = reference_digest(&rp, "det-a");
    let b = reference_digest(&rp, "det-b");
    assert_ne!(a, 0);
    assert_eq!(a, b, "identical runs must produce identical digests");
}

/// The tentpole guarantee: arm a driver kill at every fault point the
/// service passes and show that re-opening from the checkpoint directory
/// and finishing the run lands on the uninterrupted digest, every time.
#[test]
fn driver_kill_at_every_point_recovers_bit_identically() {
    let rp = replay(120, 8, 7, 30);
    let quarters = rp.quarters();

    // Clean run: reference digest + the number of fault points traversed.
    let dir = temp_dir("kill-ref");
    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("open fresh");
    svc.run(&rp, quarters).expect("clean run");
    let want = svc.cumulative_digest();
    let points = svc.system().cluster().driver_points_passed();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        points >= 8,
        "expected a sweep worth of fault points, got {points}"
    );

    for p in 0..points {
        let dir = temp_dir(&format!("kill-{p}"));
        let mut cfg = ClusterConfig::local(2);
        cfg.fault = FaultConfig::disabled().kill_driver_at_point(p);
        let killed = IngestService::open(
            Cluster::new(cfg),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .expect("open armed")
        .run(&rp, quarters);
        let err = killed.expect_err("armed run must die at its fault point");
        assert!(err.is_driver_kill(), "point {p}: unexpected error {err}");

        // The crashed driver's memory is gone; recover from disk alone.
        let mut svc = IngestService::open(
            Cluster::local(2),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .unwrap_or_else(|e| panic!("point {p}: recovery open failed: {e}"));
        svc.run(&rp, quarters)
            .unwrap_or_else(|e| panic!("point {p}: resumed run failed: {e}"));
        assert_eq!(
            svc.cumulative_digest(),
            want,
            "kill at point {p}: recovered digest diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite: a torn checkpoint write (truncated bytes that still made it
/// through the rename) must fail its CRC on recovery and fall back to the
/// previous generation — losing the torn batch's commit but nothing else.
#[test]
fn torn_checkpoint_write_falls_back_one_generation() {
    let rp = replay(120, 8, 7, 30);
    let quarters = rp.quarters();
    let want = reference_digest(&rp, "torn-ref");

    let dir = temp_dir("torn");
    let mut config = IngestConfig::new(&dir);
    // Tear the final checkpoint (generation == quarters - 1: one per
    // bootstrap commit plus one per detect batch).
    config.torn_write = Some(TornWrite {
        generation: quarters - 1,
        keep_bytes: 120,
    });
    let mut svc = IngestService::open(Cluster::local(2), dedup_config(), config, &rp)
        .expect("open with torn-write fault");
    svc.run(&rp, quarters).expect("run with torn final write");
    drop(svc);

    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("recovery open");
    assert!(
        svc.recovered_with_fallback(),
        "newest generation is torn; recovery must fall back"
    );
    assert_eq!(
        svc.batch_high_water(),
        quarters - 1,
        "fallback loses exactly the torn batch's commit"
    );
    svc.run(&rp, quarters).expect("replay the lost batch");
    assert_eq!(svc.cumulative_digest(), want);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a poisoned batch is quarantined after its retries, later
/// batches commit, and the final state matches a run that never saw the
/// batch at all.
#[test]
fn quarantine_leaves_state_as_if_the_batch_never_arrived() {
    let rp = replay(160, 10, 42, 40);
    let quarters = rp.quarters();

    let skip_dir = temp_dir("skip");
    let mut skip_cfg = IngestConfig::new(&skip_dir);
    skip_cfg.skip_batches = vec![2];
    let mut skip_svc = IngestService::open(Cluster::local(2), dedup_config(), skip_cfg, &rp)
        .expect("open skip run");
    skip_svc.run(&rp, quarters).expect("skip run");
    let want = skip_svc.cumulative_digest();
    let _ = std::fs::remove_dir_all(&skip_dir);

    let dir = temp_dir("poison");
    let mut cfg = IngestConfig::new(&dir);
    cfg.poison_batches = vec![2];
    cfg.max_batch_retries = 1;
    let mut svc =
        IngestService::open(Cluster::local(2), dedup_config(), cfg, &rp).expect("open poison run");
    svc.run(&rp, quarters).expect("poison run completes");

    assert_eq!(
        svc.batch_high_water(),
        quarters,
        "later batches still commit"
    );
    assert_eq!(svc.skipped(), &[2], "the poison batch is quarantined");
    assert_eq!(
        svc.cumulative_digest(),
        want,
        "quarantine must equal never-arrived"
    );
    let report = svc.job_report();
    assert_eq!(report.ingest.batches_quarantined, 1);
    let log = std::fs::read_to_string(dir.join("quarantine.log")).expect("quarantine.log");
    assert!(log.contains("batch 2"), "log names the batch: {log:?}");
    assert!(
        log.contains("attempts 2"),
        "one initial attempt + one retry before quarantine: {log:?}"
    );
    assert!(log.contains("poisoned batch 2"), "log carries the reason");

    // A restart after quarantine must not retry the poisoned batch.
    drop(svc);
    let svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("reopen after quarantine");
    assert_eq!(svc.skipped(), &[2]);
    assert_eq!(svc.cumulative_digest(), want);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure defers admissions (journalled, clock-charged) but never
/// touches detection state, so the digest is unchanged.
#[test]
fn backpressure_defers_without_perturbing_the_digest() {
    let rp = replay(160, 10, 42, 40);
    let want = reference_digest(&rp, "bp-ref");

    let dir = temp_dir("bp");
    let mut cfg = IngestConfig::new(&dir);
    cfg.max_lagged_pairs = 1; // every committed batch trips the lag gate
    let mut svc =
        IngestService::open(Cluster::local(2), dedup_config(), cfg, &rp).expect("open gated");
    svc.run(&rp, rp.quarters()).expect("gated run");
    assert_eq!(svc.cumulative_digest(), want, "deferrals must be invisible");

    let report = svc.job_report();
    assert!(report.ingest.deferrals >= 2, "lag gate never fired");
    assert!(
        report.ingest.deferrals <= rp.quarters() * 8,
        "deferrals are bounded per batch"
    );
    let deferred_events = svc
        .system()
        .cluster()
        .journal()
        .events()
        .iter()
        .filter(|e| e.kind.tag() == "ingest_deferred")
        .count() as u64;
    assert_eq!(deferred_events, report.ingest.deferrals);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient engine faults (worker task failures with engine-level retry
/// disabled) bubble up to the service, which rolls the batch back, backs
/// off on the virtual clock, and replays — landing on the fault-free
/// digest.
#[test]
fn transient_engine_faults_retry_to_the_fault_free_digest() {
    let rp = replay(160, 10, 42, 40);
    let want = reference_digest(&rp, "fault-ref");

    let dir = temp_dir("fault");
    let mut cluster_cfg = ClusterConfig::local(2);
    // With engine-level retry disabled every task fault fails its whole
    // job, so the rate must stay low enough that a batch of ~100 task
    // attempts converges within the service's retry budget.
    cluster_cfg.max_task_attempts = 1;
    cluster_cfg.fault = FaultConfig::with_probability(0.004, 2016);
    let mut ingest_cfg = IngestConfig::new(&dir);
    ingest_cfg.max_batch_retries = 8;
    let mut svc = IngestService::open(Cluster::new(cluster_cfg), dedup_config(), ingest_cfg, &rp)
        .expect("open faulty");
    svc.run(&rp, rp.quarters()).expect("faulty run converges");

    assert_eq!(svc.cumulative_digest(), want);
    assert!(svc.skipped().is_empty(), "no batch should be quarantined");
    let report = svc.job_report();
    assert!(
        report.ingest.batch_retries >= 1,
        "fault injection never forced a service-level retry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: forty quarters of ingest coalesce into one journal event per
/// batch — the journal never drops events and stays far under its cap.
#[test]
fn journal_stays_bounded_across_forty_quarters() {
    let rp = replay(1000, 50, 9, 25);
    assert_eq!(rp.quarters(), 40);
    let dir = temp_dir("forty");
    let mut svc = IngestService::open(
        Cluster::local(4),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("open");
    svc.run(&rp, 40).expect("forty quarters");
    assert_eq!(svc.batch_high_water(), 40);

    let journal = svc.system().cluster().journal();
    assert_eq!(journal.dropped(), 0, "journal dropped events");
    let committed = journal
        .events()
        .iter()
        .filter(|e| e.kind.tag() == "ingest_batch_committed")
        .count();
    assert_eq!(committed, 40, "exactly one coalesced event per batch");

    let report = svc.job_report();
    assert_eq!(report.ingest.batches.len(), 40);
    assert!(
        report.ingest.checkpoint_bytes > 0,
        "checkpoint bytes accounted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
