//! Pruning-equivalence suite: the bound-driven pruning engine must be
//! invisible in every output, under every engine configuration.
//!
//! Two layers of pinning:
//!
//! * **Classification** — a proptest sweep over random workloads and model
//!   shapes asserting pruned ≡ unpruned classification, result for result.
//! * **detect_new digests** — the seeded pipeline of `refactor_baseline.rs`
//!   re-run with pruning on *and* off across 1/4/16 partitions, chunk
//!   sizes, work stealing on/off, and chaos kill schedules; every leg must
//!   reproduce the pinned baseline digest bit for bit. The baseline was
//!   captured before the pruning engine existed, so the prune-on legs prove
//!   losslessness end to end and the prune-off legs prove the refactor
//!   itself (sorted cells, cutoff threading) changed nothing either.

use adr_model::{AdrReport, PairId};
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, UnlabeledPair};
use proptest::prelude::*;
use sparklet::{stable_hash, Cluster, ClusterConfig, FaultConfig, SchedConfig};

/// The fault-free `detect_new` digest pinned in `refactor_baseline.rs`,
/// captured on the pre-pruning tree.
const BASELINE_DIGEST: u64 = 11028548671881665013;

/// The seeded corpus of `refactor_baseline.rs` / `chaos.rs`.
fn corpus() -> (Vec<AdrReport>, Vec<PairId>, Vec<AdrReport>) {
    let ds = Dataset::generate(&SynthConfig::small(300, 18, 77));
    let cut = 280;
    let historical = ds.reports[..cut].to_vec();
    let labelled = ds
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let arriving = ds.reports[cut..].to_vec();
    (historical, labelled, arriving)
}

/// Bootstrap + `detect_new` under `config` with pruning forced on or off;
/// returns the detection digest.
fn detect_digest(config: ClusterConfig, prune: bool) -> sparklet::Result<u64> {
    let (historical, labelled, arriving) = corpus();
    let cluster = Cluster::new(config);
    let mut dcfg = DedupConfig::default();
    dcfg.knn.b = 8;
    dcfg.knn.prune = prune;
    dcfg.bootstrap_negatives = 400;
    let mut system = DedupSystem::new(cluster, dcfg);
    system.bootstrap(&historical, &labelled)?;
    let detections = system.detect_new(&arriving)?;
    let records: Vec<(u64, u64, u64, bool)> = detections
        .iter()
        .map(|d| (d.pair.lo, d.pair.hi, d.score.to_bits(), d.is_duplicate))
        .collect();
    Ok(stable_hash(&records))
}

#[test]
fn digest_is_pinned_across_partition_counts_with_pruning_on_and_off() {
    for executors in [1usize, 4, 16] {
        for prune in [true, false] {
            let digest =
                detect_digest(ClusterConfig::local(executors), prune).expect("pipeline run");
            assert_eq!(
                digest, BASELINE_DIGEST,
                "digest drifted at {executors} executors, prune={prune}"
            );
        }
    }
}

#[test]
fn digest_is_pinned_across_chunk_sizes_with_pruning_on_and_off() {
    // Record-at-a-time dispatch and one-slab-per-partition bracket the
    // default chunking.
    for chunk in [1usize, usize::MAX] {
        for prune in [true, false] {
            let mut config = ClusterConfig::local(4);
            config.batch.target_chunk_records = chunk;
            let digest = detect_digest(config, prune).expect("pipeline run");
            assert_eq!(
                digest, BASELINE_DIGEST,
                "digest drifted at chunk={chunk}, prune={prune}"
            );
        }
    }
}

#[test]
fn digest_is_pinned_without_work_stealing_with_pruning_on_and_off() {
    // Stealing on is the default exercised everywhere else; pin the
    // static-placement schedule explicitly.
    for prune in [true, false] {
        let mut config = ClusterConfig::local(4);
        config.sched = SchedConfig::static_placement();
        let digest = detect_digest(config, prune).expect("pipeline run");
        assert_eq!(
            digest, BASELINE_DIGEST,
            "static placement drifted with prune={prune}"
        );
    }
}

#[test]
fn digest_is_pinned_under_mid_stage_kills_with_pruning_on_and_off() {
    // Pruning shrinks the probe shuffle (stage-2 records carry the stage-1
    // cutoff and far cells drop out), but the stage graph is unchanged —
    // the chaos suite's mid-stage kill must recover identically either way.
    for prune in [true, false] {
        let mut config = ClusterConfig::local(4);
        config.fault =
            FaultConfig::disabled().kill_in_stage(0, "shuffle#4-write[map_partitions_with_ctx]", 1);
        let digest = detect_digest(config, prune).expect("pipeline run");
        assert_eq!(
            digest, BASELINE_DIGEST,
            "mid-stage kill drifted with prune={prune}"
        );
    }
}

#[test]
fn digest_is_pinned_under_random_faults_and_stealing_with_pruning_on_and_off() {
    // Random task faults perturb retry interleavings and (with stealing on)
    // the morsel schedule; neither may reach the output.
    for prune in [true, false] {
        let mut config = ClusterConfig::local(4);
        config.fault = FaultConfig::with_probability(0.05, 23);
        config.sched = SchedConfig {
            steal: true,
            ..SchedConfig::default()
        };
        let digest = detect_digest(config, prune).expect("pipeline run");
        assert_eq!(
            digest, BASELINE_DIGEST,
            "random faults drifted with prune={prune}"
        );
    }
}

/// Clustered + uniform mixture workload in 4-d: tight blobs give the
/// window/annulus bounds something to reject, the uniform backdrop keeps
/// neighbourhoods honest, and near-duplicate coordinates exercise the
/// slackened (tie-preserving) comparisons.
fn mixed_workload(
    seed: u64,
    n_neg: usize,
    n_pos: usize,
    n_test: usize,
) -> (Vec<LabeledPair<4>>, Vec<UnlabeledPair<4>>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let blob = |rng: &mut StdRng, c: [f64; 4], r: f64| -> [f64; 4] {
        std::array::from_fn(|d| c[d] + rng.gen_range(-r..r))
    };
    let centres = [
        [0.0, 0.0, 0.0, 0.0],
        [5.0, 0.0, 1.0, 0.0],
        [0.0, 6.0, 0.0, 2.0],
    ];
    let mut train = Vec::new();
    for i in 0..n_neg {
        let v = if i % 4 == 0 {
            std::array::from_fn(|_| rng.gen_range(-2.0..8.0))
        } else {
            blob(&mut rng, centres[i % 3], 0.4)
        };
        train.push(LabeledPair::new(i as u64, v, false));
    }
    for i in 0..n_pos {
        let v = blob(&mut rng, centres[0], 0.3);
        train.push(LabeledPair::new((n_neg + i) as u64, v, true));
    }
    let test = (0..n_test)
        .map(|i| {
            let v = if i % 3 == 0 {
                std::array::from_fn(|_| rng.gen_range(-2.0..8.0))
            } else {
                blob(&mut rng, centres[i % 3], 0.5)
            };
            UnlabeledPair::new(i as u64, v)
        })
        .collect();
    (train, test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pruned ≡ unpruned classification over random workloads, model
    /// shapes, and parallelism — every score, label, and shortcut flag.
    #[test]
    fn pruned_classification_is_identical_to_unpruned(
        seed in 0u64..10_000,
        b in 2usize..10,
        k in 3usize..12,
        executors in 1usize..5,
    ) {
        let (train, test) = mixed_workload(seed, 400, 12, 60);
        let run = |prune: bool| {
            let cluster = Cluster::local(executors);
            let config = FastKnnConfig {
                k,
                b,
                theta: 0.0,
                prune,
                ..FastKnnConfig::default()
            };
            FastKnn::fit(&cluster, &train, config)
                .expect("fit")
                .classify(&test)
                .expect("classify")
        };
        prop_assert_eq!(run(true), run(false));
    }
}
