//! Batch-operator equivalence suite — the chunked-execution tentpole
//! invariant: operator-at-a-time chunking must be **bit-identical** to
//! row-at-a-time execution for every operator, chunk size, partition
//! count, scheduling mode and failure schedule. Chunking may only change
//! virtual cost and journal shape, never a single output row.

use proptest::prelude::*;
use sparklet::{Cluster, ClusterConfig, FaultConfig, PairRdd};

/// Chunk sizes the property tests sweep: row-at-a-time, tiny odd sizes
/// that leave ragged tails, the default, and one-chunk-per-partition.
const CHUNK_SIZES: [usize; 5] = [1, 3, 64, 1024, usize::MAX];

fn cluster(workers: usize, chunk: usize, steal: bool) -> Cluster {
    let mut cfg = ClusterConfig::local(workers);
    cfg.batch.target_chunk_records = chunk;
    cfg.sched.steal = steal;
    Cluster::new(cfg)
}

/// Narrow chain only — output order is fully determined by input order,
/// so results are compared exactly, order included.
fn narrow_chain(cluster: &Cluster, data: Vec<u64>, partitions: usize) -> Vec<u64> {
    cluster
        .parallelize(data, partitions)
        .map(|x| x.wrapping_mul(31).wrapping_add(7))
        .filter(|x| x % 5 != 0)
        .flat_map(|x| if x % 2 == 0 { vec![x] } else { vec![x, !x] })
        .collect()
        .expect("narrow chain")
}

/// The same chain computed serially — the ground truth every engine
/// configuration must reproduce bit-for-bit.
fn narrow_serial(data: &[u64]) -> Vec<u64> {
    data.iter()
        .map(|x| x.wrapping_mul(31).wrapping_add(7))
        .filter(|x| x % 5 != 0)
        .flat_map(|x| if x % 2 == 0 { vec![x] } else { vec![x, !x] })
        .collect()
}

/// Narrow chain into a hash shuffle and per-key reduction. Reduce-side
/// group order is a hash-map artifact, so output is sorted before
/// comparison — the multiset of (key, sum) records is what must match.
fn shuffle_chain(cluster: &Cluster, data: Vec<u64>, partitions: usize) -> Vec<(u64, u64)> {
    let mut out = cluster
        .parallelize(data, partitions)
        .map(|x| x.wrapping_mul(2_654_435_761))
        .filter(|x| x % 3 != 0)
        .key_by(|x| x % 17)
        .reduce_by_key(|a, b| a.wrapping_add(b), 5)
        .collect()
        .expect("shuffle chain");
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any chunk size, partition count and stealing mode must reproduce
    /// the serial narrow-chain output exactly, order included.
    #[test]
    fn chunked_narrow_chain_is_bit_identical_to_row_path(
        data in prop::collection::vec(0u64..u64::MAX, 0..400),
        parts_idx in 0usize..3,
        chunk_idx in 0usize..CHUNK_SIZES.len(),
        steal in prop::bool::ANY,
    ) {
        let partitions = [1usize, 4, 16][parts_idx];
        let chunk = CHUNK_SIZES[chunk_idx];
        let expect = narrow_serial(&data);
        // Row path: chunk size 1 with static placement — the pre-batching
        // engine, element by element.
        let row = narrow_chain(&cluster(4, 1, false), data.clone(), partitions);
        prop_assert_eq!(&row, &expect, "row path must match serial");
        let batched = narrow_chain(&cluster(4, chunk, steal), data, partitions);
        prop_assert_eq!(&batched, &expect,
            "chunk {} / {} partitions / steal {} diverged from the row path",
            chunk, partitions, steal);
    }

    /// Shuffles bucket per-chunk through `Partitioner::partition_batch`;
    /// the reduced output must not depend on the chunk size either.
    #[test]
    fn chunked_shuffle_is_bit_identical_to_row_path(
        data in prop::collection::vec(0u64..u64::MAX, 0..400),
        parts_idx in 0usize..3,
        chunk_idx in 0usize..CHUNK_SIZES.len(),
        steal in prop::bool::ANY,
    ) {
        let partitions = [1usize, 4, 16][parts_idx];
        let chunk = CHUNK_SIZES[chunk_idx];
        let row = shuffle_chain(&cluster(4, 1, false), data.clone(), partitions);
        let batched = shuffle_chain(&cluster(4, chunk, steal), data, partitions);
        prop_assert_eq!(row, batched);
    }

    /// The batch-native operators must agree with their row-level
    /// counterparts for any chunk size.
    #[test]
    fn batch_native_operators_match_row_operators(
        data in prop::collection::vec(0u64..u64::MAX, 0..300),
        chunk_idx in 0usize..CHUNK_SIZES.len(),
    ) {
        let c = cluster(4, CHUNK_SIZES[chunk_idx], true);
        let rdd = c.parallelize(data, 4);
        let via_rows: Vec<u64> = rdd
            .map(|x| x / 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x; (x % 3) as usize])
            .collect()
            .expect("row operators");
        let via_batches: Vec<u64> = rdd
            .map_batches(|_, chunk| Ok(chunk.items().iter().map(|x| x / 3).collect()))
            .filter_batches(|_, chunk| Ok(chunk.items().iter().map(|x| x % 2 == 0).collect()))
            .flat_map_batches(|_, chunk| {
                Ok(chunk
                    .into_items()
                    .into_iter()
                    .flat_map(|x| vec![x; (x % 3) as usize])
                    .collect())
            })
            .collect()
            .expect("batch operators");
        prop_assert_eq!(via_rows, via_batches);
    }
}

#[test]
fn batch_operator_arity_violations_fail_the_task() {
    let c = cluster(2, 64, true);
    let data: Vec<u64> = (0..100).collect();
    let extra = c
        .parallelize(data.clone(), 2)
        .map_batches(|_, chunk| Ok(vec![0u64; chunk.len() + 1]))
        .collect();
    assert!(extra.is_err(), "map_batches must enforce 1:1 arity");
    let short_mask = c
        .parallelize(data, 2)
        .filter_batches(|_, chunk| Ok(vec![true; chunk.len().saturating_sub(1)]))
        .collect();
    assert!(
        short_mask.is_err(),
        "filter_batches must enforce mask length"
    );
}

/// A seeded executor kill mid-run plus random task faults: lineage
/// recovery re-executes chunked stages and re-buckets shuffle output, and
/// none of it may change a record.
#[test]
fn executor_kill_and_task_faults_leave_chunked_output_bit_identical() {
    let data: Vec<u64> = (0..20_000).collect();
    let baseline_cluster = cluster(4, 1024, true);
    let baseline = shuffle_chain(&baseline_cluster, data.clone(), 8);
    let total = baseline_cluster.job_report().virtual_us;

    let mut cfg = ClusterConfig::local(4);
    cfg.fault = FaultConfig::with_probability(0.03, 41)
        .kill_at_time(1, total / 3)
        .kill_at_time(2, 2 * total / 3);
    let chaos_cluster = Cluster::new(cfg);
    let chaos = shuffle_chain(&chaos_cluster, data, 8);
    assert_eq!(baseline, chaos, "recovery changed chunked shuffle output");

    let report = chaos_cluster.job_report();
    assert_eq!(report.recovery.executors_lost, 2);
    assert!(
        report.batch.any(),
        "chaos run must still execute through the batch path"
    );
}

/// 100k records through map/filter/shuffle: the journal grows per *chunk*
/// (coalesced per task/operator), never per record, and the report's batch
/// section accounts for every record.
#[test]
fn journal_stays_bounded_and_batch_report_aggregates_at_100k_records() {
    let n: u64 = 100_000;
    let c = cluster(8, 1024, true);
    let data: Vec<u64> = (0..n).collect();
    let out = shuffle_chain(&c, data, 8);
    assert!(!out.is_empty());

    assert_eq!(c.journal().dropped(), 0, "journal overflowed at 100k scale");
    let events = c.journal().len();
    assert!(
        events < 2_000,
        "journal must stay bounded per-chunk, not per-record: {events} events"
    );

    let report = c.job_report();
    let batch = &report.batch;
    assert!(batch.any(), "batch section must be populated");
    assert!(
        batch.records >= n,
        "batch section must account for every record: {} < {n}",
        batch.records
    );
    assert!(
        batch.chunks >= 8 && batch.chunks < n,
        "chunk count should sit between task count and record count: {}",
        batch.chunks
    );
    assert!(
        batch.dispatch_saved_us > 0,
        "1024-record chunks must save dispatch cost over row-at-a-time"
    );
    for stage in &batch.stages {
        assert!(
            stage.max_chunk_records <= 1024,
            "stage {} exceeded the configured chunk target: {}",
            stage.stage,
            stage.max_chunk_records
        );
    }
}
