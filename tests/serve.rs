//! Chaos and scale suite for the serving layer (`dedup::serve`).
//!
//! Three contracts:
//!
//! * **answer invariance** — the admission policy (batched vs
//!   request-at-a-time) and executor kills mid-serve must never change a
//!   single answer bit: the answer digest is the only output that matters
//!   and it must be policy- and fault-independent;
//! * **read-only serving** — interleaving serve traffic between ingest
//!   commits must leave the ingest service's cumulative detection digest
//!   exactly where an undisturbed (and a killed-and-recovered) run lands
//!   it — serving reads snapshots, never system state;
//! * **bounded accounting** — a hundred thousand signal requests coalesce
//!   into per-batch journal events, never run an engine job, stay under
//!   the journal cap, and surface in the job report's serve section.

use adr_synth::{Dataset, QuarterlyReplay, StreamingCorpus, SynthConfig};
use dedup::{
    answers_digest, DedupConfig, DedupSystem, IngestConfig, IngestService, ServeConfig, ServeQuery,
    ServeRequest, ServeService,
};
use fastknn::FastKnnConfig;
use sparklet::{Cluster, ClusterConfig, FaultConfig, RunJournal};
use std::path::PathBuf;

fn dedup_config() -> DedupConfig {
    DedupConfig {
        bootstrap_negatives: 400,
        use_blocking: true,
        knn: FastKnnConfig {
            theta: 0.0,
            b: 8,
            ..FastKnnConfig::default()
        },
        ..DedupConfig::default()
    }
}

fn bootstrapped(cluster: Cluster, ds: &Dataset) -> DedupSystem {
    let mut sys = DedupSystem::new(cluster, dedup_config());
    sys.bootstrap(&ds.reports, &ds.duplicate_pairs)
        .expect("bootstrap");
    sys
}

/// A mixed open-loop stream: duplicate probes (fresh-id clones of corpus
/// reports, forcing real candidate classification) with signal queries
/// threaded through.
fn mixed_requests(ds: &Dataset, n: usize) -> Vec<ServeRequest> {
    (0..n)
        .map(|i| {
            let query = if i % 4 == 3 {
                let r = &ds.reports[(i * 7) % ds.reports.len()];
                ServeQuery::Signal {
                    drug: r
                        .drug_names()
                        .first()
                        .and_then(|d| d.split_whitespace().next())
                        .unwrap_or("panadol")
                        .to_lowercase(),
                    event: r
                        .adr_names()
                        .first()
                        .and_then(|e| e.split_whitespace().next())
                        .unwrap_or("rash")
                        .to_lowercase(),
                }
            } else {
                let mut report = ds.reports[(i * 13) % ds.reports.len()].clone();
                report.id = 2_000_000_000 + i as u64;
                ServeQuery::Duplicate { report }
            };
            ServeRequest {
                arrival_us: i as u64 * 400,
                query,
            }
        })
        .collect()
}

/// The tentpole invariance: one request stream served batched, served
/// request-at-a-time, and served batched on a cluster whose executors are
/// killed mid-run — one digest.
#[test]
fn admission_policy_and_executor_kills_never_change_answers() {
    let ds = Dataset::generate(&SynthConfig::small(250, 15, 11));
    let requests = mixed_requests(&ds, 48);

    let sys = bootstrapped(Cluster::local(4), &ds);
    let after_bootstrap = sys.job_report().virtual_us;
    let batched = ServeService::attach(&sys, ServeConfig::default())
        .expect("attach")
        .run_open_loop(&requests)
        .expect("batched run");
    let total = sys.job_report().virtual_us;
    assert!(total > after_bootstrap, "serving must run engine jobs");

    let single = ServeService::attach(&sys, ServeConfig::default().request_at_a_time())
        .expect("attach")
        .run_open_loop(&requests)
        .expect("request-at-a-time run");
    assert_eq!(
        batched.digest, single.digest,
        "admission policy changed answers"
    );
    assert!(batched.batches < single.batches);
    assert_eq!(batched.digest, answers_digest(&batched.answers));

    // Kill two of the four executors at virtual times the serve jobs will
    // cross; lineage recomputation must reproduce every answer bit.
    let serve_span = total - after_bootstrap;
    let mut cfg = ClusterConfig::local(4);
    cfg.fault = FaultConfig::disabled()
        .kill_at_time(1, after_bootstrap + serve_span / 4)
        .kill_at_time(2, after_bootstrap + serve_span / 2);
    let chaos_sys = bootstrapped(Cluster::new(cfg), &ds);
    let chaos = ServeService::attach(&chaos_sys, ServeConfig::default())
        .expect("attach")
        .run_open_loop(&requests)
        .expect("chaos run");
    let report = chaos_sys.job_report();
    assert!(
        report.recovery.executors_lost >= 1,
        "no executor was actually killed (lost {})",
        report.recovery.executors_lost
    );
    assert_eq!(
        chaos.digest, batched.digest,
        "executor kills changed serve answers"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serving between ingest commits is invisible to ingest: the interleaved
/// run's cumulative detection digest equals the serve-free reference, and
/// a driver kill + recovery under the same interleaving still lands on it.
#[test]
fn serving_between_ingest_commits_preserves_recovery_invariants() {
    let rp = QuarterlyReplay::new(StreamingCorpus::new(SynthConfig::small(120, 8, 7)), 30);
    let quarters = rp.quarters();
    let probes = Dataset::generate(&SynthConfig::small(60, 5, 99));

    // Serve-free reference digest.
    let dir = temp_dir("ref");
    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("open reference");
    svc.run(&rp, quarters).expect("reference run");
    let want = svc.cumulative_digest();
    let points = svc.system().cluster().driver_points_passed();
    let _ = std::fs::remove_dir_all(&dir);

    // Interleaved leg: serve a burst after every committed quarter.
    let dir = temp_dir("mix");
    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("open interleaved");
    let mut serve = ServeService::attach(svc.system(), ServeConfig::default()).expect("attach");
    let mut served = Vec::new();
    for q in 1..=quarters {
        svc.run(&rp, q)
            .unwrap_or_else(|e| panic!("quarter {q}: {e}"));
        serve.refresh(svc.system()).expect("refresh after commit");
        let out = serve
            .run_open_loop(&mixed_requests(&probes, 8))
            .expect("interleaved serve");
        served.push(out.digest);
    }
    assert_eq!(
        svc.cumulative_digest(),
        want,
        "serve traffic perturbed the ingest digest"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Kill the driver midway, recover from disk, serve, finish: the
    // recovered digest and the post-recovery serve answers both hold.
    let dir = temp_dir("kill");
    let mut cfg = ClusterConfig::local(2);
    cfg.fault = FaultConfig::disabled().kill_driver_at_point(points / 2);
    let killed = IngestService::open(
        Cluster::new(cfg),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("open armed")
    .run(&rp, quarters);
    assert!(
        killed.expect_err("armed run must die").is_driver_kill(),
        "expected a driver kill"
    );

    let mut svc = IngestService::open(
        Cluster::local(2),
        dedup_config(),
        IngestConfig::new(&dir),
        &rp,
    )
    .expect("recovery open");
    let mut serve = ServeService::attach(svc.system(), ServeConfig::default()).expect("attach");
    svc.run(&rp, quarters).expect("resumed run");
    assert_eq!(
        svc.cumulative_digest(),
        want,
        "recovery under serving diverged"
    );
    serve.refresh(svc.system()).expect("refresh after recovery");
    let out = serve
        .run_open_loop(&mixed_requests(&probes, 8))
        .expect("post-recovery serve");
    assert_eq!(
        out.digest,
        *served.last().expect("interleaved digests"),
        "post-recovery serve answers diverged from the steady leg's final state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hundred thousand signal requests: no engine jobs, one coalesced
/// journal event per micro-batch, the journal far under its cap, and the
/// job report's serve section carrying the totals.
#[test]
fn hundred_thousand_signal_requests_stay_bounded() {
    let ds = Dataset::generate(&SynthConfig::small(220, 12, 5));
    let sys = bootstrapped(Cluster::local(2), &ds);
    let drugs = adr_synth::lexicon::drug_names(10);
    let events = ["rash", "nausea", "headache", "fatigue", "dizziness"];

    let requests: Vec<ServeRequest> = (0..100_000u64)
        .map(|i| ServeRequest {
            arrival_us: i * 10,
            query: ServeQuery::Signal {
                drug: drugs[(i % drugs.len() as u64) as usize].to_lowercase(),
                event: events[((i / 7) % events.len() as u64) as usize].to_string(),
            },
        })
        .collect();

    // Attaching runs the contingency aggregation (engine jobs); the flood
    // itself must add none.
    let mut serve = ServeService::attach(&sys, ServeConfig::default()).expect("attach");
    let stages_before = sys.cluster().clock().stages().len();
    let events_before = sys.cluster().journal().len();
    let out = serve.run_open_loop(&requests).expect("signal flood");
    assert_eq!(out.requests(), 100_000);
    assert_eq!(
        sys.cluster().clock().stages().len(),
        stages_before,
        "signal-only batches must not run engine jobs"
    );

    // One coalesced event per batch, nowhere near the journal cap.
    let journal = sys.cluster().journal();
    assert_eq!(journal.dropped(), 0, "journal dropped events");
    let serve_events = journal.len() - events_before;
    assert_eq!(serve_events, out.batches as usize, "one event per batch");
    assert!(
        out.batches <= 2_000,
        "100k requests must coalesce into few batches, got {}",
        out.batches
    );
    assert!((journal.len() as usize) < RunJournal::MAX_EVENTS / 2);

    // The job report's serve section reflects the run.
    let report = sys.job_report();
    assert_eq!(report.serve.requests, 100_000);
    assert_eq!(report.serve.batches, out.batches);
    assert_eq!(report.serve.service_us, out.service_us);
    assert_eq!(
        report.serve.batch_size_hist.iter().sum::<u64>(),
        out.batches
    );
    assert_eq!(report.serve.memo_lookups, 100_000);
    assert!(
        report.serve.memo_hits >= 99_000,
        "fifty distinct queries must hit the memo, got {} hits",
        report.serve.memo_hits
    );
    assert!(report.to_json().contains("\"serve\""));
}
