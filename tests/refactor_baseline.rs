//! Pinned end-to-end output digests.
//!
//! The batch SoA engine rewired every distance loop from k-means to
//! classification; these digests pin the *externally observable* output of
//! the seeded pipeline to the pre-refactor baseline, bit for bit. A digest
//! change means a kernel reordered floating-point accumulation, a tie broke
//! differently, or an RNG stream shifted — all of which are regressions
//! here, never acceptable drift.

use adr_model::{AdrReport, PairId};
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use mlcore::kmeans::KMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::{stable_hash, Cluster};

/// Digest of a full bootstrap + `detect_new` batch on a seeded corpus:
/// every detection's pair, bit-exact score, and label, in output order.
fn detect_new_digest() -> u64 {
    let ds = Dataset::generate(&SynthConfig::small(300, 18, 77));
    let cut = 280;
    let historical: Vec<AdrReport> = ds.reports[..cut].to_vec();
    let labelled: Vec<PairId> = ds
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let cluster = Cluster::local(4);
    let mut config = DedupConfig::default();
    config.knn.b = 8;
    config.bootstrap_negatives = 400;
    let mut system = DedupSystem::new(cluster, config);
    system.bootstrap(&historical, &labelled).expect("bootstrap");
    let arriving: Vec<AdrReport> = ds.reports[cut..].to_vec();
    let detections = system.detect_new(&arriving).expect("detect");
    assert!(!detections.is_empty());
    let records: Vec<(u64, u64, u64, bool)> = detections
        .iter()
        .map(|d| (d.pair.lo, d.pair.hi, d.score.to_bits(), d.is_duplicate))
        .collect();
    stable_hash(&records)
}

/// Digest of seeded k-means centroids and assignments (the Voronoi builder
/// underneath `FastKnn::fit`).
fn kmeans_digest() -> u64 {
    let mut rng = StdRng::seed_from_u64(4242);
    let data: Vec<[f64; 8]> = (0..3000)
        .map(|_| std::array::from_fn(|_| rng.gen_range(0.0..1.0)))
        .collect();
    let model = KMeans::new(24, 7).fit(&data);
    let centroid_bits: Vec<Vec<u64>> = model
        .centroids
        .iter()
        .map(|c| c.iter().map(|x| x.to_bits()).collect())
        .collect();
    stable_hash(&(centroid_bits, model.assignments))
}

#[test]
fn detect_new_output_is_bit_identical_to_pre_refactor_baseline() {
    // Captured on the pre-SoA scalar implementation (PR 2 tree) — see the
    // module docs for what a mismatch means.
    assert_eq!(
        detect_new_digest(),
        11028548671881665013,
        "detect_new output drifted"
    );
}

#[test]
fn kmeans_output_is_bit_identical_to_pre_refactor_baseline() {
    assert_eq!(
        kmeans_digest(),
        13040773920722072953,
        "k-means output drifted"
    );
}
