//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` locks
//! exposing parking_lot's poison-free API (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's behaviour of never poisoning.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}
