//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface the workspace consumes: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! over integer and float ranges, and `seq::SliceRandom::shuffle`. The
//! generator is SplitMix64 — statistically strong enough for synthetic-data
//! generation and subsampling, and fully deterministic per seed (the
//! reproduction's bit-determinism tests rely on that, not on matching the
//! real crate's stream).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            Self { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One mixing round so that nearby seeds diverge immediately.
            Self::from_state(state ^ 0x5DEE_CE66_D153_2D57)
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform in `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo = lo as i128;
                let hi = hi as i128;
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi - lo) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi - lo) as u128
                };
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges samplable by `Rng::gen_range`. Generic over the element type so an
/// unsuffixed integer literal range unifies with the surrounding expression's
/// type, exactly as with the real crate.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::Rng;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
