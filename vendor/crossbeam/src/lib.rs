//! Offline stand-in for `crossbeam`, providing the one primitive sparklet
//! uses: `channel::unbounded` — an MPMC queue where both `Sender` and
//! `Receiver` are `Clone`, and `recv` blocks until a message arrives or every
//! sender has been dropped (then returns `Err(RecvError)`).
//!
//! Implemented as `Arc<(Mutex<VecDeque>, Condvar)>` with sender/receiver
//! reference counts; `std::sync::mpsc` is not a substitute because its
//! receiver is single-consumer.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            state.queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.state.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn multi_consumer_work_queue_drains_every_item() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> =
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_once_senders_are_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
