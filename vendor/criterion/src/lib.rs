//! Offline stand-in for `criterion`.
//!
//! Provides `black_box`, `Criterion::bench_function`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! adaptive wall-clock loop: warm up briefly, pick an iteration count that
//! fills the measurement window, and report mean ns/iter and ops/s. When the
//! binary is invoked with `--test` (as `cargo test` does for bench targets)
//! each benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

pub struct Bencher {
    mode: Mode,
    /// Mean nanoseconds per iteration from the last `iter` call.
    measured_ns: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Measure { warmup: Duration, window: Duration },
    Smoke,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let (warmup, window) = match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.measured_ns = f64::NAN;
                return;
            }
            Mode::Measure { warmup, window } => (warmup, window),
        };
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target_iters = ((window.as_nanos() as f64 / est_ns).ceil() as u64).max(1);
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        self.measured_ns = start.elapsed().as_nanos() as f64 / target_iters as f64;
    }
}

pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test" || a == "--list");
        let mode = if smoke {
            Mode::Smoke
        } else {
            Mode::Measure {
                warmup: Duration::from_millis(60),
                window: Duration::from_millis(240),
            }
        };
        Self { mode }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { mode: self.mode, measured_ns: f64::NAN };
        f(&mut bencher);
        if self.mode == Mode::Smoke {
            println!("{id}: ok (smoke)");
        } else if bencher.measured_ns.is_nan() {
            println!("{id}: no measurement (Bencher::iter never called)");
        } else {
            let ops = 1e9 / bencher.measured_ns;
            println!("{id:<55} {:>14.1} ns/iter {:>16.0} ops/s", bencher.measured_ns, ops);
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
