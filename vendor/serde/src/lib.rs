//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but no
//! crate actually serializes anything (there is no `serde_json`/`bincode`
//! dependency), so marker traits with blanket impls plus no-op derive macros
//! are behaviourally equivalent. If a future PR adds a real serializer, swap
//! this vendored stub for the real crate.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant mirroring serde's `DeserializeOwned` bound alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
