//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The vendored `serde` stub gives every type a blanket trait impl, so the
//! derives only need to exist (and accept the input) — they emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
