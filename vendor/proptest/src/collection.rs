//! `prop::collection::vec` — vectors of a given strategy with a size bound.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Sizes accepted by [`vec`]: an exact length, `lo..hi`, or `lo..=hi`.
pub trait IntoSizeBounds {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeBounds for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeBounds for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeBounds for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.min + rng.below(self.max - self.min + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
