//! The `proptest!` block macro and its assertion helpers.

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // The attempt cap bounds pathological `prop_assume!` rejection.
            while __accepted < __config.cases && __attempts < __config.cases.saturating_mul(20) {
                __attempts += 1;
                let __case: ::core::result::Result<(), &'static str> = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if __case.is_ok() {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Rejects the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err("prop_assume rejected the case");
        }
    };
}
