//! The `Strategy` trait and the built-in range / tuple strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests. Generate-only: no shrink tree.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot generate from empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot generate from empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot generate from empty range");
                *self.start() + (rng.next_unit_f64() as $t) * (*self.end() - *self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident => $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A => 0),
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
    (A => 0, B => 1, C => 2, D => 3, E => 4),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5),
);
