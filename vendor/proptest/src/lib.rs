//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace uses:
//! `proptest!` blocks (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::sample::select`, and simple regex-shaped string
//! strategies (`".{0,16}"`, `"[a-z]{1,12}"`, ...).
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name) and there is **no shrinking** — a failing
//! case panics with the generated values left to the assertion message.

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod sample;
pub mod string;

// `prop::bool::ANY` — the module must be addressable as `bool` under `prop`.
#[path = "bool_any.rs"]
pub mod bool;

mod macros;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    // Re-exported so `use proptest::prelude::*` brings the macros in scope
    // under their usual names even though they are crate-root exports.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors proptest's prelude alias that makes `prop::collection::vec`
    /// et al. resolve after a glob import.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}
