//! `prop::sample::select` — pick uniformly from a fixed list of choices.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T> {
    choices: Vec<T>,
}

pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select requires at least one choice");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len())].clone()
    }
}
