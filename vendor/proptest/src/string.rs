//! String strategies from regex-shaped patterns.
//!
//! Supports the subset of regex syntax this workspace's properties use:
//! a sequence of atoms (`.`, `[class]` with ranges and literal characters,
//! literal characters) each with an optional `{n}` / `{m,n}` quantifier.
//! `.` generates printable ASCII.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

enum Atom {
    AnyPrintable,
    Class(Vec<char>),
}

struct Unit {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Unit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let inner = &chars[i + 1..close];
                let mut set = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        for c in inner[j]..=inner[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(inner[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Class(vec![c])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad lower repeat bound"),
                    hi.trim().parse().expect("bad upper repeat bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat bounds in pattern {pattern:?}");
        units.push(Unit { atom, min, max });
    }
    units
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for unit in parse_pattern(self) {
            let n = unit.min + rng.below(unit.max - unit.min + 1);
            for _ in 0..n {
                let c = match &unit.atom {
                    Atom::AnyPrintable => (0x20u8 + rng.below(0x5F) as u8) as char,
                    Atom::Class(set) => set[rng.below(set.len())],
                };
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_respect_shape() {
        let mut rng = TestRng::deterministic("patterns_respect_shape");
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{3,12}", &mut rng);
            assert!((3..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = Strategy::generate(".{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let s = Strategy::generate("[ a-z0-9]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase() || c.is_ascii_digit()));

            let s = Strategy::generate("[a-z]{8}", &mut rng);
            assert_eq!(s.len(), 8);
        }
    }
}
