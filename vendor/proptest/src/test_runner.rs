//! Deterministic case generation: per-test RNG and run configuration.

/// How many cases a `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; generate-only cases are cheap but
        // some of this workspace's properties run whole pipelines, so keep
        // the default moderate.
        Self { cases: 64 }
    }
}

/// SplitMix64 seeded from the test's fully-qualified name, so every test has
/// its own reproducible stream and reruns are identical.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}
