//! Interactive-style detection for a single incoming report — the
//! "interactive and fast detection of duplicates for a specific report"
//! use-case §1 motivates Spark (here: sparklet) with.
//!
//! ```sh
//! cargo run -p examples --bin incoming_reports --release
//! ```
//!
//! Builds a database, hand-crafts a follow-up report of a known case (the
//! paper's Table 1(a) pattern: same patient and drug, different outcome and
//! rewritten narrative), submits it, and prints the ranked candidate pairs.

use adr_model::AdrReport;
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use sparklet::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Dataset::generate(&SynthConfig::small(800, 40, 11));
    let cluster = Cluster::local(4);
    let mut config = DedupConfig::default();
    config.knn.b = 16;
    let mut system = DedupSystem::new(cluster, config);
    system.bootstrap(&corpus.reports, &corpus.duplicate_pairs)?;

    // A clerk re-enters case 123 from a handwritten follow-up: outcome now
    // known, narrative paraphrased.
    let original = &corpus.reports[123];
    let mut followup = AdrReport {
        id: corpus.reports.len() as u64,
        ..original.clone()
    };
    followup.case.case_number = "CASE-2013-FOLLOWUP".into();
    followup.reaction.reaction_outcome_description = Some("Recovered".into());
    followup.reaction.report_description = format!(
        "Follow-up received: the patient described in an earlier report recovered fully. \
         Original account: {}",
        original.reaction.report_description
    );

    println!(
        "submitting follow-up of report {} (drug: {})",
        original.id, original.medicine.generic_name_description
    );
    let detections = system.detect_new(&[followup])?;
    println!(
        "checked {} candidate pairs; top 5 by score:",
        detections.len()
    );
    for d in detections.iter().take(5) {
        println!(
            "  pair ({:>4}, {:>4})  score {:>10.2}  {}",
            d.pair.lo,
            d.pair.hi,
            d.score,
            if d.is_duplicate {
                "DUPLICATE"
            } else {
                "distinct"
            }
        );
    }
    let hit = detections
        .iter()
        .any(|d| d.is_duplicate && d.pair.contains(original.id));
    println!(
        "follow-up correctly linked to report {}: {}",
        original.id,
        if hit { "yes" } else { "no" }
    );
    Ok(())
}
