//! Batch deduplication of a whole regulator database — the paper's Fig. 1
//! workflow end to end.
//!
//! ```sh
//! cargo run -p examples --bin batch_dedup --release
//! ```
//!
//! Bootstraps a [`dedup::DedupSystem`] from an expert-labelled historical
//! corpus, then replays a month of "newly arrived" reports in batches,
//! printing the duplicates detected per batch and the growth of the
//! labelled-pair stores (the feedback loop).

use adr_model::AdrReport;
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use sparklet::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Dataset::generate(&SynthConfig::small(1_200, 60, 42));
    let truth = corpus.duplicate_set();

    // The generator appends duplicate partners last, so holding out the
    // final 30 reports leaves 30 expert-labelled duplicate pairs for
    // bootstrapping while 30 duplicates remain to be discovered.
    let cut = corpus.reports.len() - 30;
    let historical: Vec<AdrReport> = corpus.reports[..cut].to_vec();
    let labelled: Vec<_> = corpus
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let arriving: Vec<AdrReport> = corpus.reports[cut..].to_vec();

    let cluster = Cluster::local(4);
    let mut config = DedupConfig::default();
    config.knn.b = 16;
    config.bootstrap_negatives = 3_000;
    let mut system = DedupSystem::new(cluster.clone(), config);
    system.bootstrap(&historical, &labelled)?;
    println!(
        "bootstrapped: {} reports, {} labelled duplicate pairs, {} sampled negatives",
        system.report_count(),
        system.store().duplicate_count(),
        system.store().non_duplicate_count(),
    );

    let mut found = 0usize;
    let mut correct = 0usize;
    for (batch_no, batch) in arriving.chunks(20).enumerate() {
        let detections = system.detect_new(batch)?;
        let dups: Vec<_> = detections.iter().filter(|d| d.is_duplicate).collect();
        for d in &dups {
            found += 1;
            if truth.contains(&d.pair) {
                correct += 1;
            }
        }
        println!(
            "batch {batch_no}: {} reports -> {} candidate pairs checked, {} flagged",
            batch.len(),
            detections.len(),
            dups.len(),
        );
    }
    println!(
        "total flagged: {found} ({correct} confirmed against ground truth); \
         stores now hold {} duplicates / {} negatives",
        system.store().duplicate_count(),
        system.store().non_duplicate_count(),
    );
    println!(
        "virtual cluster time: {:.2} virtual minutes across {} jobs",
        cluster.virtual_elapsed().minutes(),
        cluster.metrics().jobs_submitted.get(),
    );
    Ok(())
}
