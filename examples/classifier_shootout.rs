//! Classifier shoot-out on one workload: Fast kNN (Eq. 5) vs the Eq. 1
//! majority vote vs the SVM baselines — a miniature of the paper's Fig. 5.
//!
//! ```sh
//! cargo run -p examples --bin classifier_shootout --release
//! ```

use adr_synth::{Dataset, SynthConfig};
use dedup::workload::build_workload;
use dedup::{svm_clustering_scores, svm_scores};
use fastknn::{FastKnn, FastKnnConfig};
use mlcore::average_precision;
use mlcore::knn::KnnClassifier;
use mlcore::svm::SvmConfig;
use sparklet::Cluster;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Dataset::generate(&SynthConfig::small(1_500, 75, 3));
    let workload = build_workload(&corpus, 20_000, 1_000, 3);
    println!(
        "workload: {} train ({} dup) / {} test ({} dup)",
        workload.train.len(),
        workload.train_positives(),
        workload.test.len(),
        workload.test_positives(),
    );

    // Fast kNN with the inverse-distance score (Eq. 5).
    let cluster = Cluster::local(4);
    let model = FastKnn::fit(&cluster, &workload.train, FastKnnConfig::default())?;
    let scored = model.classify(&workload.test)?;
    let by_id: HashMap<u64, f64> = scored.iter().map(|s| (s.id, s.score)).collect();
    let knn_scores: Vec<f64> = workload.test.iter().map(|t| by_id[&t.id]).collect();

    // Plain majority vote (Eq. 1) over the same training data.
    let points: Vec<Vec<f64>> = workload.train.iter().map(|p| p.vector.to_vec()).collect();
    let labels: Vec<i8> = workload
        .train
        .iter()
        .map(|p| if p.positive { 1 } else { -1 })
        .collect();
    let vote = KnnClassifier::new(points, labels, 9);
    let vote_scores: Vec<f64> = workload
        .test
        .iter()
        .map(|t| vote.vote(&t.vector) as f64)
        .collect();

    // SVM baselines (era-faithful SGD solver + cluster-sampled variant).
    let svm = svm_scores(&workload.train, &workload.test, &SvmConfig::default());
    let svm_by_id: HashMap<u64, f64> = svm.into_iter().collect();
    let svm_scores_v: Vec<f64> = workload.test.iter().map(|t| svm_by_id[&t.id]).collect();
    let svmc = svm_clustering_scores(
        &workload.train,
        &workload.test,
        8,
        workload.train.len() / 2,
        &SvmConfig::default(),
    );
    let svmc_by_id: HashMap<u64, f64> = svmc.into_iter().collect();
    let svmc_scores: Vec<f64> = workload.test.iter().map(|t| svmc_by_id[&t.id]).collect();

    println!("\nAUPR (higher is better):");
    for (name, scores) in [
        ("Fast kNN (Eq. 5 score)", &knn_scores),
        ("kNN majority vote (Eq. 1)", &vote_scores),
        ("SVM (SGD baseline)", &svm_scores_v),
        ("SVM clustering (8 clusters)", &svmc_scores),
    ] {
        let ap = average_precision(&workload.scored(scores));
        println!("  {name:<28} {ap:.3}");
    }
    Ok(())
}
