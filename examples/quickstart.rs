//! Quickstart: classify report pairs with Fast kNN in ~40 lines.
//!
//! ```sh
//! cargo run -p examples --bin quickstart --release
//! ```
//!
//! Generates a small synthetic ADR corpus, derives labelled pair vectors,
//! fits the Voronoi-partitioned Fast kNN classifier on an embedded sparklet
//! cluster, and scores a held-out test set.

use adr_synth::{Dataset, SynthConfig};
use dedup::workload::build_workload;
use fastknn::{FastKnn, FastKnnConfig};
use mlcore::average_precision;
use sparklet::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A corpus of 1,000 reports with 50 injected duplicate pairs.
    let corpus = Dataset::generate(&SynthConfig::small(1_000, 50, 7));
    println!("corpus: {:?}", corpus.summary());

    // 2. Labelled pair workload: 20,000 training pairs, 500 test pairs.
    let workload = build_workload(&corpus, 20_000, 500, 7);
    println!(
        "training pairs: {} ({} duplicates) / test pairs: {} ({} duplicates)",
        workload.train.len(),
        workload.train_positives(),
        workload.test.len(),
        workload.test_positives(),
    );

    // 3. An embedded 4-executor cluster and a Fast kNN model (k=9, 16
    //    Voronoi clusters, 2 test blocks, θ=0).
    let cluster = Cluster::local(4);
    let model = FastKnn::fit(
        &cluster,
        &workload.train,
        FastKnnConfig {
            k: 9,
            b: 16,
            c: 2,
            theta: 0.0,
            seed: 7,
            prune: true,
        },
    )?;

    // 4. Classify and evaluate. `classify` returns results sorted by pair
    //    id, so align scores back to the workload's test order by id.
    let scored = model.classify(&workload.test)?;
    let detected = scored.iter().filter(|s| s.positive).count();
    let by_id: std::collections::HashMap<u64, f64> =
        scored.iter().map(|s| (s.id, s.score)).collect();
    let scores: Vec<(f64, bool)> = workload
        .test
        .iter()
        .zip(&workload.truth)
        .map(|(t, &truth)| (by_id[&t.id], truth))
        .collect();
    println!(
        "flagged {detected} candidate duplicates; AUPR = {:.3}",
        average_precision(&scores)
    );
    println!(
        "engine: {} tasks, {} shuffle records, {} intra-cluster comparisons",
        cluster.metrics().tasks_succeeded.get(),
        cluster.metrics().shuffle_records_written.get(),
        cluster
            .metrics()
            .counter(fastknn::counters::INTRA_COMPARISONS)
            .get(),
    );

    // 5. Inspect the run: the journal-backed job report shows every stage's
    //    task-duration distribution, shuffle volume and cache behaviour.
    println!("\n{}", cluster.job_report());
    Ok(())
}
