//! Shared nothing — this package exists to host the runnable examples; see
//! the `[[bin]]` targets (`quickstart`, `batch_dedup`, `incoming_reports`,
//! `classifier_shootout`).
