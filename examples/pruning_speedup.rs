//! Test-set pruning in practice (§4.3.4 + the paper's future-work item of
//! learning f(θ) from labelled data).
//!
//! ```sh
//! cargo run -p examples --bin pruning_speedup --release
//! ```
//!
//! Builds a workload, learns the pruning expansion f(θ) for a 100% recall
//! target from held-out duplicates, and compares comparison counts and
//! virtual time with and without pruning.

use adr_synth::{Dataset, SynthConfig};
use dedup::workload::build_workload;
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, TestPruner, UnlabeledPair};
use sparklet::Cluster;

fn classify(
    train: &[LabeledPair],
    test: &[UnlabeledPair],
) -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let cluster = Cluster::local(4);
    let model = FastKnn::fit(
        &cluster,
        train,
        FastKnnConfig {
            b: 24,
            ..FastKnnConfig::default()
        },
    )?;
    cluster.reset_run_state();
    let _ = model.classify(test)?;
    let comparisons = cluster
        .metrics()
        .counter(fastknn::counters::INTRA_COMPARISONS)
        .get()
        + cluster
            .metrics()
            .counter(fastknn::counters::CROSS_COMPARISONS)
            .get();
    Ok((comparisons, cluster.virtual_elapsed().minutes()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Dataset::generate(&SynthConfig::small(2_000, 100, 21));
    let workload = build_workload(&corpus, 30_000, 3_000, 21);
    let positives: Vec<LabeledPair> = workload
        .train
        .iter()
        .filter(|p| p.positive)
        .cloned()
        .collect();
    println!(
        "workload: {} train / {} test; {} positive pairs feed the pruner",
        workload.train.len(),
        workload.test.len(),
        positives.len()
    );

    // Learn f(θ) from a held-out half of the positives (§5.2.6 future work).
    let (fit_pos, held_out) = positives.split_at(positives.len() / 2);
    let pruner = TestPruner::build(fit_pos, 12, 21);
    let held_vectors: Vec<adr_model::DistVec> = held_out.iter().map(|p| p.vector).collect();
    let f_theta = pruner.learn_f_theta(&held_vectors, 1.0, 0.05);
    println!("learned f(θ) = {f_theta:.3} for a 100% duplicate-recall target");

    let (full_cmp, full_min) = classify(&workload.train, &workload.test)?;
    let outcome = pruner.prune(&workload.test, f_theta);
    println!(
        "pruning keeps {:.1}% of the test set ({} of {})",
        outcome.keep_ratio() * 100.0,
        outcome.kept.len(),
        workload.test.len()
    );
    let (pruned_cmp, pruned_min) = classify(&workload.train, &outcome.kept)?;

    // Safety check: no true duplicate was pruned.
    let kept_ids: std::collections::HashSet<u64> = outcome.kept.iter().map(|t| t.id).collect();
    let lost = workload
        .test
        .iter()
        .zip(&workload.truth)
        .filter(|(t, &truth)| truth && !kept_ids.contains(&t.id))
        .count();

    println!(
        "\n{:<22} {:>16} {:>16}",
        "", "comparisons", "virtual minutes"
    );
    println!("{:<22} {:>16} {:>16.3}", "no pruning", full_cmp, full_min);
    println!(
        "{:<22} {:>16} {:>16.3}",
        "with pruning", pruned_cmp, pruned_min
    );
    println!(
        "\npruning cuts {:.0}% of comparisons and {:.0}% of virtual time; \
         true duplicates lost: {lost}",
        (1.0 - pruned_cmp as f64 / full_cmp as f64) * 100.0,
        (1.0 - pruned_min / full_min) * 100.0,
    );
    Ok(())
}
